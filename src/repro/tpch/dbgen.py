"""Deterministic TPC-H table generators (scaled down).

The paper's end-to-end experiment (Table IV) runs "a modified TPC-H
benchmark as workload where we replaced all DECIMAL columns by DOUBLE"
in MonetDB.  The official ``dbgen`` is C and SF=1 produces six million
``lineitem`` rows; this module generates the same table shapes at
small scale factors.  Besides ``lineitem`` (the paper's Q1/Q6 subject)
it produces the join dimensions the planner's multi-table queries need
— ``orders``, ``customer``, ``supplier`` and the fixed ``nation`` /
``region`` lists — with mutually consistent keys (``l_orderkey``
references ``o_orderkey`` at the same scale factor, ``o_custkey``
references ``c_custkey``, ``l_suppkey`` references ``s_suppkey``).

``lineitem`` value distributions follow the spec:

* ``l_quantity``      — uniform integers in [1, 50];
* ``l_extendedprice`` — quantity * unit price, unit price in
  [900.00, 1100.00] around a per-part base (simplified from the spec's
  retail-price formula, same magnitude and spread);
* ``l_discount``      — uniform in [0.00, 0.10], two decimals;
* ``l_tax``           — uniform in [0.00, 0.08], two decimals;
* ``l_shipdate``      — order date + 1..121 days, order dates uniform
  over 1992-01-01 .. 1998-08-02;
* ``l_returnflag``    — 'R' or 'A' (equal odds) when the receipt date
  precedes the 1995-06-17 cutoff, else 'N' (the spec's rule);
* ``l_linestatus``    — 'F' if shipped by the cutoff else 'O'.

Everything is driven by a seeded generator: same seed, same bits, so
experiments are repeatable — and the *physical reshuffles* the paper's
reproducibility claims are tested against are applied explicitly (see
:func:`shuffled_copy`).
"""

from __future__ import annotations

import datetime

import numpy as np

from ..engine.table import Schema, Table
from ..engine.types import DATE, DOUBLE, INT, VarcharType

__all__ = [
    "LINEITEM_COLUMNS",
    "ORDERS_COLUMNS",
    "CUSTOMER_COLUMNS",
    "SUPPLIER_COLUMNS",
    "NATION_COLUMNS",
    "REGION_COLUMNS",
    "generate_lineitem_arrays",
    "generate_orders_arrays",
    "generate_customer_arrays",
    "generate_supplier_arrays",
    "nation_arrays",
    "region_arrays",
    "lineitem_table",
    "tpch_tables",
    "load_lineitem",
    "load_tpch",
    "shuffled_copy",
    "ROWS_PER_SCALE",
    "ORDERS_PER_SCALE",
    "CUSTOMERS_PER_SCALE",
    "SUPPLIERS_PER_SCALE",
]

#: SF=1 is ~6,000,000 lineitem rows.
ROWS_PER_SCALE = 6_000_000
#: SF=1 row counts of the dimension tables (spec section 4.2.5).
ORDERS_PER_SCALE = 1_500_000
CUSTOMERS_PER_SCALE = 150_000
SUPPLIERS_PER_SCALE = 10_000

_EPOCH_START = datetime.date(1992, 1, 1).toordinal()
_EPOCH_END = datetime.date(1998, 8, 2).toordinal()
_CUTOFF = datetime.date(1995, 6, 17).toordinal()

#: Modified benchmark: DECIMAL columns replaced by DOUBLE (paper §VI-E).
LINEITEM_COLUMNS = [
    ("l_orderkey", INT),
    ("l_suppkey", INT),
    ("l_linenumber", INT),
    ("l_quantity", DOUBLE),
    ("l_extendedprice", DOUBLE),
    ("l_discount", DOUBLE),
    ("l_tax", DOUBLE),
    ("l_returnflag", VarcharType(1)),
    ("l_linestatus", VarcharType(1)),
    ("l_shipdate", DATE),
    ("l_commitdate", DATE),
    ("l_receiptdate", DATE),
]

ORDERS_COLUMNS = [
    ("o_orderkey", INT),
    ("o_custkey", INT),
    ("o_orderstatus", VarcharType(1)),
    ("o_totalprice", DOUBLE),
    ("o_orderdate", DATE),
    ("o_shippriority", INT),
]

CUSTOMER_COLUMNS = [
    ("c_custkey", INT),
    ("c_name", VarcharType(25)),
    ("c_nationkey", INT),
    ("c_mktsegment", VarcharType(10)),
    ("c_acctbal", DOUBLE),
]

SUPPLIER_COLUMNS = [
    ("s_suppkey", INT),
    ("s_nationkey", INT),
    ("s_acctbal", DOUBLE),
]

NATION_COLUMNS = [
    ("n_nationkey", INT),
    ("n_name", VarcharType(25)),
    ("n_regionkey", INT),
]

REGION_COLUMNS = [
    ("r_regionkey", INT),
    ("r_name", VarcharType(25)),
]

#: The spec's fixed region / nation lists (nation -> region mapping).
_REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
_NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)

_MKT_SEGMENTS = (
    "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD",
)


def _scaled(per_scale: int, scale_factor: float) -> int:
    return max(1, int(round(scale_factor * per_scale)))


def _norders(scale_factor: float) -> int:
    # Orders average ~4 lineitems; keep the key range consistent with
    # the orderkeys lineitem draws.
    return max(1, _scaled(ROWS_PER_SCALE, scale_factor) // 4)


def generate_lineitem_arrays(scale_factor: float = 0.001, seed: int = 19920101) -> dict:
    """Generate the lineitem columns as storage-ready NumPy arrays."""
    nrows = max(1, int(round(scale_factor * ROWS_PER_SCALE)))
    rng = np.random.default_rng(seed)

    # Orders average ~4 lineitems; assign line numbers within an order.
    norders = _norders(scale_factor)
    orderkeys = np.sort(rng.integers(1, norders + 1, size=nrows))
    linenumbers = np.ones(nrows, dtype=np.int64)
    same = np.concatenate(([False], orderkeys[1:] == orderkeys[:-1]))
    run = np.ones(nrows, dtype=np.int64)
    for i in range(1, nrows):
        if same[i]:
            run[i] = run[i - 1] + 1
    linenumbers = run

    quantity = rng.integers(1, 51, size=nrows).astype(np.float64)
    unit_price = np.round(rng.uniform(900.0, 1100.0, size=nrows), 2)
    extendedprice = np.round(quantity * unit_price, 2)
    discount = np.round(rng.integers(0, 11, size=nrows) / 100.0, 2)
    tax = np.round(rng.integers(0, 9, size=nrows) / 100.0, 2)

    orderdate = rng.integers(_EPOCH_START, _EPOCH_END, size=nrows)
    shipdate = orderdate + rng.integers(1, 122, size=nrows)
    commitdate = orderdate + rng.integers(30, 91, size=nrows)
    receiptdate = shipdate + rng.integers(1, 31, size=nrows)

    returned = receiptdate <= _CUTOFF
    flag_roll = rng.integers(0, 2, size=nrows)
    returnflag = np.where(returned, np.where(flag_roll == 0, "R", "A"), "N")
    linestatus = np.where(shipdate <= _CUTOFF, "F", "O")

    # Drawn last so the earlier columns keep their historical streams.
    nsupp = _scaled(SUPPLIERS_PER_SCALE, scale_factor)
    suppkeys = rng.integers(1, nsupp + 1, size=nrows)

    return {
        "l_orderkey": orderkeys.astype(np.int64),
        "l_suppkey": suppkeys.astype(np.int64),
        "l_linenumber": linenumbers,
        "l_quantity": quantity,
        "l_extendedprice": extendedprice,
        "l_discount": discount,
        "l_tax": tax,
        "l_returnflag": returnflag.astype(object),
        "l_linestatus": linestatus.astype(object),
        "l_shipdate": shipdate.astype(np.int64),
        "l_commitdate": commitdate.astype(np.int64),
        "l_receiptdate": receiptdate.astype(np.int64),
    }


def generate_orders_arrays(scale_factor: float = 0.001,
                           seed: int = 19920101) -> dict:
    """Generate the ``orders`` columns (keys match lineitem's range)."""
    norders = _norders(scale_factor)
    ncust = _scaled(CUSTOMERS_PER_SCALE, scale_factor)
    rng = np.random.default_rng([seed, 1])
    orderdate = rng.integers(_EPOCH_START, _EPOCH_END, size=norders)
    return {
        "o_orderkey": np.arange(1, norders + 1, dtype=np.int64),
        "o_custkey": rng.integers(1, ncust + 1, size=norders),
        "o_orderstatus": np.where(
            orderdate + 90 <= _CUTOFF, "F", "O"
        ).astype(object),
        "o_totalprice": np.round(
            rng.uniform(900.0, 450_000.0, size=norders), 2
        ),
        "o_orderdate": orderdate,
        # The spec fixes shippriority to 0; Q3 groups by it regardless.
        "o_shippriority": np.zeros(norders, dtype=np.int64),
    }


def generate_customer_arrays(scale_factor: float = 0.001,
                             seed: int = 19920101) -> dict:
    """Generate the ``customer`` columns."""
    ncust = _scaled(CUSTOMERS_PER_SCALE, scale_factor)
    rng = np.random.default_rng([seed, 2])
    segments = np.array(_MKT_SEGMENTS, dtype=object)
    return {
        "c_custkey": np.arange(1, ncust + 1, dtype=np.int64),
        "c_name": np.array(
            [f"Customer#{key:09d}" for key in range(1, ncust + 1)],
            dtype=object,
        ),
        "c_nationkey": rng.integers(0, len(_NATIONS), size=ncust),
        "c_mktsegment": segments[rng.integers(0, len(segments), size=ncust)],
        "c_acctbal": np.round(rng.uniform(-999.99, 9999.99, size=ncust), 2),
    }


def generate_supplier_arrays(scale_factor: float = 0.001,
                             seed: int = 19920101) -> dict:
    """Generate the ``supplier`` columns."""
    nsupp = _scaled(SUPPLIERS_PER_SCALE, scale_factor)
    rng = np.random.default_rng([seed, 3])
    return {
        "s_suppkey": np.arange(1, nsupp + 1, dtype=np.int64),
        "s_nationkey": rng.integers(0, len(_NATIONS), size=nsupp),
        "s_acctbal": np.round(rng.uniform(-999.99, 9999.99, size=nsupp), 2),
    }


def nation_arrays() -> dict:
    """The spec's fixed 25-nation list."""
    return {
        "n_nationkey": np.arange(len(_NATIONS), dtype=np.int64),
        "n_name": np.array([name for name, _ in _NATIONS], dtype=object),
        "n_regionkey": np.array(
            [region for _, region in _NATIONS], dtype=np.int64
        ),
    }


def region_arrays() -> dict:
    """The spec's fixed 5-region list."""
    return {
        "r_regionkey": np.arange(len(_REGIONS), dtype=np.int64),
        "r_name": np.array(list(_REGIONS), dtype=object),
    }


def lineitem_table(scale_factor: float = 0.001, seed: int = 19920101) -> Table:
    """Build a loaded ``lineitem`` :class:`~repro.engine.table.Table`."""
    table = Table("lineitem", Schema(list(LINEITEM_COLUMNS)))
    table.bulk_load(generate_lineitem_arrays(scale_factor, seed))
    return table


def tpch_tables(scale_factor: float = 0.001, seed: int = 19920101) -> dict:
    """All six tables, loaded, keyed by name."""
    specs = [
        ("lineitem", LINEITEM_COLUMNS,
         generate_lineitem_arrays(scale_factor, seed)),
        ("orders", ORDERS_COLUMNS,
         generate_orders_arrays(scale_factor, seed)),
        ("customer", CUSTOMER_COLUMNS,
         generate_customer_arrays(scale_factor, seed)),
        ("supplier", SUPPLIER_COLUMNS,
         generate_supplier_arrays(scale_factor, seed)),
        ("nation", NATION_COLUMNS, nation_arrays()),
        ("region", REGION_COLUMNS, region_arrays()),
    ]
    tables = {}
    for name, columns, arrays in specs:
        table = Table(name, Schema(list(columns)))
        table.bulk_load(arrays)
        tables[name] = table
    return tables


def load_lineitem(db, scale_factor: float = 0.001, seed: int = 19920101) -> int:
    """Create and load ``lineitem`` into a :class:`~repro.engine.Database`."""
    if "lineitem" in db.catalog:
        db.catalog.drop("lineitem")
    table = lineitem_table(scale_factor, seed)
    db.catalog.add(table)
    return len(table)


def load_tpch(db, scale_factor: float = 0.001,
              seed: int = 19920101) -> dict[str, int]:
    """Create and load every TPC-H table; returns row counts by name."""
    counts = {}
    for name, table in tpch_tables(scale_factor, seed).items():
        if name in db.catalog:
            db.catalog.drop(name)
        db.catalog.add(table)
        counts[name] = len(table)
    return counts


def shuffled_copy(db_or_table, seed: int) -> Table:
    """A physically permuted copy of ``lineitem`` (same logical content).

    This models the storage-layer reorderings of the paper's
    introduction: compression, data placement, backup/restore — all of
    which permute rows without changing the relation.
    """
    table = db_or_table if isinstance(db_or_table, Table) else db_or_table.table("lineitem")
    data = table.scan()
    nrows = len(next(iter(data.values())))
    order = np.random.default_rng(seed).permutation(nrows)
    shuffled = Table(table.name, table.schema)
    shuffled.bulk_load({name: arr[order] for name, arr in data.items()})
    return shuffled
