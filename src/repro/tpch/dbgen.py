"""Deterministic TPC-H ``lineitem`` generator (scaled down).

The paper's end-to-end experiment (Table IV) runs "a modified TPC-H
benchmark as workload where we replaced all DECIMAL columns by DOUBLE"
in MonetDB.  The official ``dbgen`` is C and SF=1 produces six million
``lineitem`` rows; this module generates the same table shape at small
scale factors with the spec's value distributions:

* ``l_quantity``      — uniform integers in [1, 50];
* ``l_extendedprice`` — quantity * unit price, unit price in
  [900.00, 1100.00] around a per-part base (simplified from the spec's
  retail-price formula, same magnitude and spread);
* ``l_discount``      — uniform in [0.00, 0.10], two decimals;
* ``l_tax``           — uniform in [0.00, 0.08], two decimals;
* ``l_shipdate``      — order date + 1..121 days, order dates uniform
  over 1992-01-01 .. 1998-08-02;
* ``l_returnflag``    — 'R' or 'A' (equal odds) when the receipt date
  precedes the 1995-06-17 cutoff, else 'N' (the spec's rule);
* ``l_linestatus``    — 'F' if shipped by the cutoff else 'O'.

Everything is driven by a seeded generator: same seed, same bits, so
experiments are repeatable — and the *physical reshuffles* the paper's
reproducibility claims are tested against are applied explicitly (see
:func:`shuffled_copy`).
"""

from __future__ import annotations

import datetime

import numpy as np

from ..engine.table import Schema, Table
from ..engine.types import DATE, DOUBLE, INT, VarcharType

__all__ = [
    "LINEITEM_COLUMNS",
    "generate_lineitem_arrays",
    "lineitem_table",
    "load_lineitem",
    "shuffled_copy",
    "ROWS_PER_SCALE",
]

#: SF=1 is ~6,000,000 lineitem rows.
ROWS_PER_SCALE = 6_000_000

_EPOCH_START = datetime.date(1992, 1, 1).toordinal()
_EPOCH_END = datetime.date(1998, 8, 2).toordinal()
_CUTOFF = datetime.date(1995, 6, 17).toordinal()

#: Modified benchmark: DECIMAL columns replaced by DOUBLE (paper §VI-E).
LINEITEM_COLUMNS = [
    ("l_orderkey", INT),
    ("l_linenumber", INT),
    ("l_quantity", DOUBLE),
    ("l_extendedprice", DOUBLE),
    ("l_discount", DOUBLE),
    ("l_tax", DOUBLE),
    ("l_returnflag", VarcharType(1)),
    ("l_linestatus", VarcharType(1)),
    ("l_shipdate", DATE),
    ("l_commitdate", DATE),
    ("l_receiptdate", DATE),
]


def generate_lineitem_arrays(scale_factor: float = 0.001, seed: int = 19920101) -> dict:
    """Generate the lineitem columns as storage-ready NumPy arrays."""
    nrows = max(1, int(round(scale_factor * ROWS_PER_SCALE)))
    rng = np.random.default_rng(seed)

    # Orders average ~4 lineitems; assign line numbers within an order.
    norders = max(1, nrows // 4)
    orderkeys = np.sort(rng.integers(1, norders + 1, size=nrows))
    linenumbers = np.ones(nrows, dtype=np.int64)
    same = np.concatenate(([False], orderkeys[1:] == orderkeys[:-1]))
    run = np.ones(nrows, dtype=np.int64)
    for i in range(1, nrows):
        if same[i]:
            run[i] = run[i - 1] + 1
    linenumbers = run

    quantity = rng.integers(1, 51, size=nrows).astype(np.float64)
    unit_price = np.round(rng.uniform(900.0, 1100.0, size=nrows), 2)
    extendedprice = np.round(quantity * unit_price, 2)
    discount = np.round(rng.integers(0, 11, size=nrows) / 100.0, 2)
    tax = np.round(rng.integers(0, 9, size=nrows) / 100.0, 2)

    orderdate = rng.integers(_EPOCH_START, _EPOCH_END, size=nrows)
    shipdate = orderdate + rng.integers(1, 122, size=nrows)
    commitdate = orderdate + rng.integers(30, 91, size=nrows)
    receiptdate = shipdate + rng.integers(1, 31, size=nrows)

    returned = receiptdate <= _CUTOFF
    flag_roll = rng.integers(0, 2, size=nrows)
    returnflag = np.where(returned, np.where(flag_roll == 0, "R", "A"), "N")
    linestatus = np.where(shipdate <= _CUTOFF, "F", "O")

    return {
        "l_orderkey": orderkeys.astype(np.int64),
        "l_linenumber": linenumbers,
        "l_quantity": quantity,
        "l_extendedprice": extendedprice,
        "l_discount": discount,
        "l_tax": tax,
        "l_returnflag": returnflag.astype(object),
        "l_linestatus": linestatus.astype(object),
        "l_shipdate": shipdate.astype(np.int64),
        "l_commitdate": commitdate.astype(np.int64),
        "l_receiptdate": receiptdate.astype(np.int64),
    }


def lineitem_table(scale_factor: float = 0.001, seed: int = 19920101) -> Table:
    """Build a loaded ``lineitem`` :class:`~repro.engine.table.Table`."""
    table = Table("lineitem", Schema(list(LINEITEM_COLUMNS)))
    table.bulk_load(generate_lineitem_arrays(scale_factor, seed))
    return table


def load_lineitem(db, scale_factor: float = 0.001, seed: int = 19920101) -> int:
    """Create and load ``lineitem`` into a :class:`~repro.engine.Database`."""
    if "lineitem" in db.catalog:
        db.catalog.drop("lineitem")
    table = lineitem_table(scale_factor, seed)
    db.catalog.add(table)
    return len(table)


def shuffled_copy(db_or_table, seed: int) -> Table:
    """A physically permuted copy of ``lineitem`` (same logical content).

    This models the storage-layer reorderings of the paper's
    introduction: compression, data placement, backup/restore — all of
    which permute rows without changing the relation.
    """
    table = db_or_table if isinstance(db_or_table, Table) else db_or_table.table("lineitem")
    data = table.scan()
    nrows = len(next(iter(data.values())))
    order = np.random.default_rng(seed).permutation(nrows)
    shuffled = Table(table.name, table.schema)
    shuffled.bulk_load({name: arr[order] for name, arr in data.items()})
    return shuffled
