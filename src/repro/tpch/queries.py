"""TPC-H queries used by the paper's end-to-end evaluation.

Query 1 is "aggregation-intensive": four SUMs, three AVGs and a COUNT
over ~95 % of ``lineitem``, grouped by two one-character flags (at most
six groups).  Table IV measures its CPU time under four SUM
implementations; :func:`run_q1` reproduces that measurement on our
engine, and :func:`q1_reference` provides an exact (fsum) oracle.

Query 6 (also shipped) is the no-grouping aggregation counterpart.
"""

from __future__ import annotations

import math

import numpy as np

from ..engine.session import Database

__all__ = ["Q1_SQL", "Q6_SQL", "run_q1", "run_q6", "q1_reference"]

Q1_SQL = """
SELECT
    l_returnflag,
    l_linestatus,
    SUM(l_quantity) AS sum_qty,
    SUM(l_extendedprice) AS sum_base_price,
    SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
    SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
    AVG(l_quantity) AS avg_qty,
    AVG(l_extendedprice) AS avg_price,
    AVG(l_discount) AS avg_disc,
    COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
"""

Q6_SQL = """
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24
"""


def run_q1(db: Database):
    """Execute Query 1; ``db.last_timings`` holds the operator breakdown."""
    return db.execute(Q1_SQL)


def run_q6(db: Database):
    """Execute Query 6."""
    return db.execute(Q6_SQL)


def q1_reference(db: Database) -> dict:
    """Exact Q1 oracle: per-group sums via ``math.fsum``.

    Returns ``{(returnflag, linestatus): {column: exact_value}}``.
    """
    table = db.table("lineitem")
    data = table.scan()
    import datetime

    cutoff = datetime.date(1998, 12, 1).toordinal() - 90
    mask = data["l_shipdate"] <= cutoff
    keys = list(zip(data["l_returnflag"][mask], data["l_linestatus"][mask]))
    qty = data["l_quantity"][mask]
    price = data["l_extendedprice"][mask]
    disc = data["l_discount"][mask]
    tax = data["l_tax"][mask]
    disc_price = price * (1 - disc)
    charge = disc_price * (1 + tax)

    groups: dict = {}
    for i, key in enumerate(keys):
        groups.setdefault(key, []).append(i)
    out = {}
    for key, idx in groups.items():
        idx = np.asarray(idx)
        n = len(idx)
        out[key] = {
            "sum_qty": math.fsum(qty[idx]),
            "sum_base_price": math.fsum(price[idx]),
            "sum_disc_price": math.fsum(disc_price[idx]),
            "sum_charge": math.fsum(charge[idx]),
            "avg_qty": math.fsum(qty[idx]) / n,
            "avg_price": math.fsum(price[idx]) / n,
            "avg_disc": math.fsum(disc[idx]) / n,
            "count_order": n,
        }
    return out
