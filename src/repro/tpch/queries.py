"""TPC-H queries used by the paper's end-to-end evaluation.

Query 1 is "aggregation-intensive": four SUMs, three AVGs and a COUNT
over ~95 % of ``lineitem``, grouped by two one-character flags (at most
six groups).  Table IV measures its CPU time under four SUM
implementations; :func:`run_q1` reproduces that measurement on our
engine, and :func:`q1_reference` provides an exact (fsum) oracle.

Query 6 (also shipped) is the no-grouping aggregation counterpart.

Queries 3 and 5 exercise the planner stack end to end: multi-table
FROM lists whose WHERE equalities become hash-join keys, filters pushed
below the joins into the scans, and a reproducible SUM aggregated on
the probe side of the join pipeline.  In the repro sum modes their
result bits are identical for every worker count, morsel size, and
join build side.  :func:`q3_reference` / :func:`q5_reference` are
``math.fsum`` oracles over hand-rolled dictionary joins.
"""

from __future__ import annotations

import math

import numpy as np

from ..engine.session import Database

__all__ = [
    "Q1_SQL", "Q3_SQL", "Q5_SQL", "Q6_SQL",
    "run_q1", "run_q3", "run_q5", "run_q6",
    "q1_reference", "q3_reference", "q5_reference",
]

Q1_SQL = """
SELECT
    l_returnflag,
    l_linestatus,
    SUM(l_quantity) AS sum_qty,
    SUM(l_extendedprice) AS sum_base_price,
    SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
    SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
    AVG(l_quantity) AS avg_qty,
    AVG(l_extendedprice) AS avg_price,
    AVG(l_discount) AS avg_disc,
    COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
"""

Q6_SQL = """
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24
"""

Q3_SQL = """
SELECT
    l_orderkey,
    SUM(l_extendedprice * (1 - l_discount)) AS revenue,
    o_orderdate,
    o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate, l_orderkey
LIMIT 10
"""

Q5_SQL = """
SELECT
    n_name,
    SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= DATE '1994-01-01'
  AND o_orderdate < DATE '1995-01-01'
GROUP BY n_name
ORDER BY revenue DESC, n_name
"""


def run_q1(db: Database):
    """Execute Query 1; ``db.last_timings`` holds the operator breakdown."""
    return db.execute(Q1_SQL)


def run_q6(db: Database):
    """Execute Query 6."""
    return db.execute(Q6_SQL)


def run_q3(db: Database):
    """Execute Query 3 (customer x orders x lineitem)."""
    return db.execute(Q3_SQL)


def run_q5(db: Database):
    """Execute Query 5 (six-table local-supplier-volume join)."""
    return db.execute(Q5_SQL)


def q1_reference(db: Database) -> dict:
    """Exact Q1 oracle: per-group sums via ``math.fsum``.

    Returns ``{(returnflag, linestatus): {column: exact_value}}``.
    """
    table = db.table("lineitem")
    data = table.scan()
    import datetime

    cutoff = datetime.date(1998, 12, 1).toordinal() - 90
    mask = data["l_shipdate"] <= cutoff
    keys = list(zip(data["l_returnflag"][mask], data["l_linestatus"][mask]))
    qty = data["l_quantity"][mask]
    price = data["l_extendedprice"][mask]
    disc = data["l_discount"][mask]
    tax = data["l_tax"][mask]
    disc_price = price * (1 - disc)
    charge = disc_price * (1 + tax)

    groups: dict = {}
    for i, key in enumerate(keys):
        groups.setdefault(key, []).append(i)
    out = {}
    for key, idx in groups.items():
        idx = np.asarray(idx)
        n = len(idx)
        out[key] = {
            "sum_qty": math.fsum(qty[idx]),
            "sum_base_price": math.fsum(price[idx]),
            "sum_disc_price": math.fsum(disc_price[idx]),
            "sum_charge": math.fsum(charge[idx]),
            "avg_qty": math.fsum(qty[idx]) / n,
            "avg_price": math.fsum(price[idx]) / n,
            "avg_disc": math.fsum(disc[idx]) / n,
            "count_order": n,
        }
    return out


def q3_reference(db: Database) -> dict:
    """Exact Q3 oracle via dictionary joins + ``math.fsum``.

    Returns ``{(l_orderkey, o_orderdate, o_shippriority): revenue}``
    for **all** qualifying groups (no LIMIT applied).
    """
    import datetime

    cutoff = datetime.date(1995, 3, 15).toordinal()
    customer = db.table("customer").scan()
    orders = db.table("orders").scan()
    lineitem = db.table("lineitem").scan()

    building = set(
        customer["c_custkey"][customer["c_mktsegment"] == "BUILDING"].tolist()
    )
    order_info: dict[int, tuple[int, int]] = {}
    for key, cust, date, priority in zip(
        orders["o_orderkey"].tolist(), orders["o_custkey"].tolist(),
        orders["o_orderdate"].tolist(), orders["o_shippriority"].tolist(),
    ):
        if date < cutoff and cust in building:
            order_info[key] = (date, priority)

    terms: dict[tuple, list[float]] = {}
    mask = lineitem["l_shipdate"] > cutoff
    revenue = (
        lineitem["l_extendedprice"][mask]
        * (1 - lineitem["l_discount"][mask])
    )
    for orderkey, value in zip(
        lineitem["l_orderkey"][mask].tolist(), revenue.tolist()
    ):
        info = order_info.get(orderkey)
        if info is not None:
            terms.setdefault((orderkey, *info), []).append(value)
    return {key: math.fsum(values) for key, values in terms.items()}


def q5_reference(db: Database) -> dict:
    """Exact Q5 oracle: ``{n_name: revenue}`` via dictionary joins."""
    import datetime

    lo = datetime.date(1994, 1, 1).toordinal()
    hi = datetime.date(1995, 1, 1).toordinal()
    customer = db.table("customer").scan()
    orders = db.table("orders").scan()
    lineitem = db.table("lineitem").scan()
    supplier = db.table("supplier").scan()
    nation = db.table("nation").scan()
    region = db.table("region").scan()

    asia = set(
        region["r_regionkey"][region["r_name"] == "ASIA"].tolist()
    )
    nation_name = {
        key: name
        for key, name, regionkey in zip(
            nation["n_nationkey"].tolist(), nation["n_name"].tolist(),
            nation["n_regionkey"].tolist(),
        )
        if regionkey in asia
    }
    cust_nation = dict(
        zip(customer["c_custkey"].tolist(), customer["c_nationkey"].tolist())
    )
    supp_nation = dict(
        zip(supplier["s_suppkey"].tolist(), supplier["s_nationkey"].tolist())
    )
    order_cust = {
        key: cust
        for key, cust, date in zip(
            orders["o_orderkey"].tolist(), orders["o_custkey"].tolist(),
            orders["o_orderdate"].tolist(),
        )
        if lo <= date < hi
    }

    terms: dict[str, list[float]] = {}
    revenue = lineitem["l_extendedprice"] * (1 - lineitem["l_discount"])
    for orderkey, suppkey, value in zip(
        lineitem["l_orderkey"].tolist(), lineitem["l_suppkey"].tolist(),
        revenue.tolist(),
    ):
        cust = order_cust.get(orderkey)
        if cust is None:
            continue
        supplier_nation = supp_nation.get(suppkey)
        if supplier_nation is None or cust_nation.get(cust) != supplier_nation:
            continue
        name = nation_name.get(supplier_nation)
        if name is None:
            continue
        terms.setdefault(name, []).append(value)
    return {name: math.fsum(values) for name, values in terms.items()}
