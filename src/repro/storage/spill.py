"""Columnar spill format for out-of-core aggregation.

A *run file* holds one serialized partial group table: the group keys
(dictionary-encoded per key column) plus every partial aggregate state
— exact int64 quantum ladders for the repro sums
(:class:`~repro.aggregation.grouped.GroupedSummation`), plain
accumulator arrays for IEEE/integer sums, buffered raw pairs for the
sorted mode, per-group value sets for COUNT(DISTINCT), and the
MIN/MAX/COUNT arrays.  Because every one of those states merges
*exactly* (or, for the sorted mode, canonicalises order at finalize),
a table that round-trips through this format and is re-merged produces
**bit-identical** results — which is what lets the external GROUP BY
operator (:mod:`repro.aggregation.external_agg`) treat the memory
budget as a pure performance knob.

File layout::

    MAGIC (8B) | payload length (u64 LE) | payload | crc32 (u32 LE) | END (8B)

The payload is a self-describing tagged tree: scalars, strings,
lists/tuples/dicts, and NumPy arrays stored as ``dtype.str`` plus raw
little-endian bytes (so the IEEE bit patterns round-trip exactly on
every architecture).  Object-dtype key dictionaries and DISTINCT value
sets fall back to :mod:`pickle` frames — they hold plain Python values
produced by this process, never untrusted input.

Crash safety: a truncated or corrupted file fails the length, CRC, or
end-marker check and raises :class:`SpillFormatError` — the engine
never silently aggregates over half a run.
"""

from __future__ import annotations

import pickle
import struct
import zlib

import numpy as np

from ..core.params import RsumParams
from ..core.state import SummationState
from ..errors import SpillFormatError
from ..fp.formats import format_by_name

__all__ = [
    "SPILL_MAGIC",
    "FrameDecoder",
    "SpillFormatError",
    "dump_buffered_repro",
    "dump_grouped_summation",
    "dump_summation_state",
    "decode_payload",
    "dump_table",
    "encode_payload",
    "frame_payload",
    "iter_frames",
    "load_buffered_repro",
    "load_grouped_summation",
    "load_summation_state",
    "load_table_into",
    "read_run_file",
    "unframe_payload",
    "write_run_file",
]

SPILL_MAGIC = b"RSPILL01"
_END_MARK = b"RSPLEND."


# ---------------------------------------------------------------------------
# Tagged value codec
# ---------------------------------------------------------------------------

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

# Precompiled structs: the codec runs once per spilled value, so the
# struct-format parse is worth hoisting.
_S_I64 = struct.Struct("<q")
_S_F64 = struct.Struct("<d")
_S_U16 = struct.Struct("<H")
_S_U32 = struct.Struct("<I")
_S_U64 = struct.Struct("<Q")


def _encode(value, out: bytearray) -> None:
    """Append one value's tagged encoding to ``out``."""
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, (int, np.integer)):
        value = int(value)
        if _INT64_MIN <= value <= _INT64_MAX:
            out += b"i" + _S_I64.pack(value)
        else:
            # Unbounded carry counters from the scalar SummationState.
            raw = value.to_bytes(
                (value.bit_length() + 8) // 8, "little", signed=True
            )
            out += b"I" + _S_U32.pack(len(raw)) + raw
    elif isinstance(value, (float, np.floating)):
        out += b"f" + _S_F64.pack(float(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += b"s" + _S_U32.pack(len(raw)) + raw
    elif isinstance(value, bytes):
        out += b"b" + _S_U32.pack(len(value)) + value
    elif isinstance(value, np.ndarray):
        if value.dtype == object:
            raw = pickle.dumps(value.tolist(), protocol=4)
            out += b"o" + _S_U32.pack(len(raw)) + raw
        else:
            little = value.astype(value.dtype.newbyteorder("<"), copy=False)
            dts = little.dtype.str.encode("ascii")
            raw = little.tobytes()
            out += (
                b"A"
                + _S_U16.pack(len(dts))
                + dts
                + _S_U64.pack(len(raw))
                + raw
            )
    elif isinstance(value, (set, frozenset)):
        raw = pickle.dumps(set(value), protocol=4)
        out += b"S" + _S_U32.pack(len(raw)) + raw
    elif isinstance(value, tuple):
        out += b"U" + _S_U32.pack(len(value))
        for item in value:
            _encode(item, out)
    elif isinstance(value, list):
        out += b"L" + _S_U32.pack(len(value))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        out += b"D" + _S_U32.pack(len(value))
        for key, item in value.items():
            _encode(key, out)
            _encode(item, out)
    else:
        raise TypeError(f"cannot spill-encode {type(value).__name__}")


class _Reader:
    def __init__(self, buf: bytes):
        self.buf = buf
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.buf):
            raise SpillFormatError("spill payload truncated mid-value")
        piece = self.buf[self.pos : end]
        self.pos = end
        return piece

    def unpack(self, s: struct.Struct):
        (value,) = s.unpack(self.take(s.size))
        return value

    def decode(self):
        tag = self.take(1)
        if tag == b"N":
            return None
        if tag == b"T":
            return True
        if tag == b"F":
            return False
        if tag == b"i":
            return self.unpack(_S_I64)
        if tag == b"I":
            raw = self.take(self.unpack(_S_U32))
            return int.from_bytes(raw, "little", signed=True)
        if tag == b"f":
            return self.unpack(_S_F64)
        if tag == b"s":
            return self.take(self.unpack(_S_U32)).decode("utf-8")
        if tag == b"b":
            return self.take(self.unpack(_S_U32))
        if tag == b"A":
            dts = self.take(self.unpack(_S_U16)).decode("ascii")
            raw = self.take(self.unpack(_S_U64))
            try:
                dtype = np.dtype(dts)
            except TypeError as exc:
                raise SpillFormatError(f"bad array dtype {dts!r}") from exc
            if dtype.itemsize and len(raw) % dtype.itemsize:
                raise SpillFormatError("array byte length not a dtype multiple")
            arr = np.frombuffer(raw, dtype=dtype)
            return arr.astype(dtype.newbyteorder("="), copy=True)
        if tag == b"o":
            items = self._unpickle(self.take(self.unpack(_S_U32)))
            arr = np.empty(len(items), dtype=object)
            for i, item in enumerate(items):
                arr[i] = item
            return arr
        if tag == b"S":
            return self._unpickle(self.take(self.unpack(_S_U32)))
        if tag == b"U":
            return tuple(self.decode() for _ in range(self.unpack(_S_U32)))
        if tag == b"L":
            return [self.decode() for _ in range(self.unpack(_S_U32))]
        if tag == b"D":
            count = self.unpack(_S_U32)
            out = {}
            for _ in range(count):
                key = self.decode()
                out[key] = self.decode()
            return out
        raise SpillFormatError(f"unknown spill value tag {tag!r}")

    @staticmethod
    def _unpickle(raw: bytes):
        try:
            return pickle.loads(raw)
        except Exception as exc:  # truncated/corrupted pickle frame
            raise SpillFormatError("corrupted object frame") from exc


def _encode_payload(value) -> bytes:
    out = bytearray()
    _encode(value, out)
    return bytes(out)


def _decode_payload(raw: bytes):
    reader = _Reader(raw)
    value = reader.decode()
    if reader.pos != len(raw):
        raise SpillFormatError("trailing bytes after spill payload")
    return value


def encode_payload(value) -> bytes:
    """Serialize one payload tree with the tagged spill codec.

    The distributed exchange ships shard replicas and control payloads
    as codec trees inside :func:`frame_payload` frames — the same bytes
    a run file holds, minus the filesystem."""
    return _encode_payload(value)


def decode_payload(raw: bytes):
    """Inverse of :func:`encode_payload` (raises on damage)."""
    return _decode_payload(raw)


# ---------------------------------------------------------------------------
# Framing: one layout for run files AND the shard-exchange wire
#
# The frame is self-delimiting (magic | u64 payload length | payload |
# crc32 | end marker), so the same bytes work as an on-disk run file,
# an in-memory buffer, or a stream of back-to-back frames on a pipe —
# the spill format *is* the wire protocol.  Every reader validates
# magic, length, end marker, and CRC; damage raises, never mis-reads.
# ---------------------------------------------------------------------------

_HEAD_LEN = len(SPILL_MAGIC) + 8
_FOOT_LEN = 4 + len(_END_MARK)


def frame_payload(payload: bytes) -> bytes:
    """One framed, checksummed blob (the run-file layout, in memory)."""
    return b"".join(
        (
            SPILL_MAGIC,
            struct.pack("<Q", len(payload)),
            payload,
            struct.pack("<I", zlib.crc32(payload)),
            _END_MARK,
        )
    )


def unframe_payload(blob: bytes, context: str = "frame") -> bytes:
    """Verify and strip exactly one frame (raises on any damage)."""
    blob = bytes(blob)
    if len(blob) < _HEAD_LEN or blob[: len(SPILL_MAGIC)] != SPILL_MAGIC:
        raise SpillFormatError(f"{context}: not a spill frame")
    (length,) = struct.unpack("<Q", blob[len(SPILL_MAGIC) : _HEAD_LEN])
    expected = _HEAD_LEN + length + _FOOT_LEN
    if len(blob) != expected:
        raise SpillFormatError(
            f"{context}: truncated frame "
            f"({len(blob)} bytes, expected {expected})"
        )
    payload = blob[_HEAD_LEN : _HEAD_LEN + length]
    (crc,) = struct.unpack("<I", blob[_HEAD_LEN + length : _HEAD_LEN + length + 4])
    if blob[-len(_END_MARK) :] != _END_MARK:
        raise SpillFormatError(f"{context}: missing end marker")
    if zlib.crc32(payload) != crc:
        raise SpillFormatError(f"{context}: payload checksum mismatch")
    return payload


class FrameDecoder:
    """Incremental reader for a stream of back-to-back frames.

    Feed arbitrary byte chunks (socket reads, pipe messages, file
    slices); complete payloads come back verified, in order.  Chunk
    boundaries carry no meaning — any split of the same byte stream
    decodes to the same payload sequence.  A stream that ends mid-frame
    is truncation: :meth:`finish` raises rather than letting a partial
    partial-aggregate state pass as complete.
    """

    def __init__(self, context: str = "frame stream"):
        self._context = context
        self._buffer = bytearray()
        self.frames_decoded = 0

    def feed(self, chunk: bytes) -> list[bytes]:
        """Absorb ``chunk``; return every newly completed payload."""
        self._buffer += chunk
        payloads = []
        while True:
            if len(self._buffer) < _HEAD_LEN:
                break
            if self._buffer[: len(SPILL_MAGIC)] != SPILL_MAGIC:
                raise SpillFormatError(f"{self._context}: not a spill frame")
            (length,) = struct.unpack(
                "<Q", self._buffer[len(SPILL_MAGIC) : _HEAD_LEN]
            )
            total = _HEAD_LEN + length + _FOOT_LEN
            if len(self._buffer) < total:
                break
            frame = bytes(self._buffer[:total])
            del self._buffer[:total]
            payloads.append(
                unframe_payload(
                    frame, f"{self._context}[{self.frames_decoded}]"
                )
            )
            self.frames_decoded += 1
        return payloads

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary."""
        if self._buffer:
            raise SpillFormatError(
                f"{self._context}: stream truncated mid-frame "
                f"({len(self._buffer)} dangling bytes after "
                f"{self.frames_decoded} complete frames)"
            )


def iter_frames(blob: bytes, context: str = "frame stream"):
    """Yield each verified payload of a concatenated-frame blob."""
    decoder = FrameDecoder(context)
    yield from decoder.feed(blob)
    decoder.finish()


def write_run_file(path: str, payload: bytes) -> int:
    """Write one framed, checksummed run file; returns bytes written."""
    frame = frame_payload(payload)
    with open(path, "wb") as handle:
        handle.write(frame)
    return len(frame)


def read_run_file(path: str) -> bytes:
    """Read and verify one run file's payload (raises on any damage)."""
    with open(path, "rb") as handle:
        blob = handle.read()
    return unframe_payload(blob, context=path)


# ---------------------------------------------------------------------------
# Core rsum state round-trips
# ---------------------------------------------------------------------------


def dump_grouped_summation(grouped) -> dict:
    """Payload tree for a :class:`GroupedSummation` (exact)."""
    return {
        "fmt": grouped.params.fmt.name,
        "levels": int(grouped.params.levels),
        "w": int(grouped.params.w),
        "ngroups": int(grouped.ngroups),
        "e0": grouped.e0,
        "s": list(grouped.s),
        "c": list(grouped.c),
        "nan": grouped.nan_cnt,
        "pos": grouped.pos_cnt,
        "neg": grouped.neg_cnt,
    }


def load_grouped_summation(data: dict):
    from ..aggregation.grouped import GroupedSummation

    try:
        params = RsumParams(
            format_by_name(data["fmt"]), data["levels"], data["w"]
        )
        grouped = GroupedSummation(params, int(data["ngroups"]))
        levels = [np.asarray(level, dtype=np.int64) for level in data["s"]]
        carries = [np.asarray(level, dtype=np.int64) for level in data["c"]]
        if len(levels) != params.levels or len(carries) != params.levels:
            raise SpillFormatError("level count mismatch in rsum payload")
        grouped.e0 = np.asarray(data["e0"], dtype=np.int64)
        grouped.s = levels
        grouped.c = carries
        grouped.nan_cnt = np.asarray(data["nan"], dtype=np.int64)
        grouped.pos_cnt = np.asarray(data["pos"], dtype=np.int64)
        grouped.neg_cnt = np.asarray(data["neg"], dtype=np.int64)
        for arr in (
            grouped.e0, grouped.nan_cnt, grouped.pos_cnt, grouped.neg_cnt,
            *grouped.s, *grouped.c,
        ):
            if arr.shape != (grouped.ngroups,):
                raise SpillFormatError("rsum array length mismatch")
    except (KeyError, TypeError, ValueError) as exc:
        raise SpillFormatError(f"bad GroupedSummation payload: {exc}") from exc
    return grouped


def dump_summation_state(state: SummationState) -> dict:
    """Payload tree for a scalar :class:`SummationState` (exact,
    including unbounded carry counters)."""
    return {
        "fmt": state.params.fmt.name,
        "levels": int(state.params.levels),
        "w": int(state.params.w),
        "e0": state.e0,
        "s": list(state.s),
        "c": list(state.c),
        "nan": int(state.nan_count),
        "pos": int(state.posinf_count),
        "neg": int(state.neginf_count),
    }


def load_summation_state(data: dict) -> SummationState:
    try:
        params = RsumParams(
            format_by_name(data["fmt"]), data["levels"], data["w"]
        )
        state = SummationState(params)
        if len(data["s"]) != params.levels or len(data["c"]) != params.levels:
            raise SpillFormatError("level count mismatch in rsum payload")
        state.e0 = None if data["e0"] is None else int(data["e0"])
        state.s = [int(v) for v in data["s"]]
        state.c = [int(v) for v in data["c"]]
        state.nan_count = int(data["nan"])
        state.posinf_count = int(data["pos"])
        state.neginf_count = int(data["neg"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SpillFormatError(f"bad SummationState payload: {exc}") from exc
    return state


def dump_buffered_repro(buffered) -> dict:
    """Payload tree for a :class:`BufferedReproFloat` (flushes first —
    the buffer is a performance device, not state; RSUM's
    batching-independence makes the flush bit-invisible)."""
    buffered.flush()
    return {
        "buffer_size": int(buffered.buffer_size),
        "state": dump_summation_state(buffered.accumulator.state),
    }


def load_buffered_repro(data: dict):
    from ..core.buffer import BufferedReproFloat

    try:
        state = load_summation_state(data["state"])
        buffered = BufferedReproFloat(
            buffer_size=int(data["buffer_size"]), params=state.params
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SpillFormatError(f"bad buffered payload: {exc}") from exc
    buffered.accumulator.state = state
    return buffered


# ---------------------------------------------------------------------------
# Partial aggregate states (engine layer)
# ---------------------------------------------------------------------------


def _float_bits(col: np.ndarray) -> np.ndarray:
    return col.view(np.uint32 if col.dtype == np.float32 else np.uint64)


def _dump_key_column(col: np.ndarray) -> dict:
    """Dictionary-encode one key column (exact, bit-preserving)."""
    if col.dtype == object:
        from ..engine.operators import factorize_object

        codes, uniques = factorize_object(col)
        return {"enc": "object", "codes": codes, "uniques": list(uniques)}
    if col.dtype.kind == "f":
        # Encode the raw bit patterns so every NaN payload and signed
        # zero round-trips exactly (np.unique would conflate them).
        uniques, codes = np.unique(_float_bits(col), return_inverse=True)
        return {
            "enc": "bits",
            "dtype": col.dtype.str,
            "codes": codes.astype(np.int64, copy=False),
            "uniques": uniques,
        }
    uniques, codes = np.unique(col, return_inverse=True)
    return {
        "enc": "plain",
        "dtype": col.dtype.str,
        "codes": codes.astype(np.int64, copy=False),
        "uniques": uniques,
    }


def _load_key_column(data: dict, ngroups: int) -> np.ndarray:
    codes = np.asarray(data["codes"], dtype=np.int64)
    if codes.shape != (ngroups,):
        raise SpillFormatError("key code length mismatch")
    if data["enc"] == "object":
        out = np.empty(ngroups, dtype=object)
        uniques = data["uniques"]
        for i, code in enumerate(codes.tolist()):
            out[i] = uniques[code]
        return out
    dtype = np.dtype(data["dtype"]).newbyteorder("=")
    uniques = np.asarray(data["uniques"])
    if data["enc"] == "bits":
        return uniques[codes].view(dtype)
    return uniques[codes].astype(dtype, copy=False)


def _dump_sum_impl(impl) -> dict:
    from ..engine import operators as ops

    if impl is None:
        return {"kind": "none"}
    if isinstance(impl, ops._PlainSumImpl):
        return {
            "kind": "plain",
            "dtype": impl.sums.dtype.str,
            "scale": impl.scale,
            "sums": impl.sums,
        }
    if isinstance(impl, ops._ReproSumImpl):
        return {
            "kind": "repro",
            "dtype": np.dtype(impl._dtype).str,
            "levels": int(impl._levels),
            "grouped": dump_grouped_summation(impl.grouped),
        }
    if isinstance(impl, ops._SortedSumImpl):
        return {
            "kind": "sorted",
            "dtype": impl.dtype.str,
            "chunks": [list(chunk) for chunk in impl.chunks],
        }
    raise TypeError(f"cannot spill sum impl {type(impl).__name__}")


def _load_sum_impl(data: dict):
    from ..engine import operators as ops

    kind = data.get("kind")
    if kind == "none":
        return None
    if kind == "plain":
        impl = ops._PlainSumImpl(np.dtype(data["dtype"]), data["scale"])
        impl.sums = np.asarray(data["sums"])
        return impl
    if kind == "repro":
        impl = ops._ReproSumImpl(
            np.dtype(data["dtype"]).type, int(data["levels"])
        )
        impl.grouped = load_grouped_summation(data["grouped"])
        return impl
    if kind == "sorted":
        impl = ops._SortedSumImpl(np.dtype(data["dtype"]))
        impl.chunks = [
            (np.asarray(gids, dtype=np.int64), np.asarray(values))
            for gids, values in data["chunks"]
        ]
        return impl
    raise SpillFormatError(f"unknown sum impl kind {kind!r}")


def _dump_state(state) -> dict:
    from ..engine import operators as ops
    from ..engine import vectorized as vec

    if isinstance(state, ops._SumState):  # includes _VecSumState
        return {"tag": "sum", "impl": _dump_sum_impl(state.impl)}
    if isinstance(state, ops._CountState):  # includes _VecCountState
        return {"tag": "count", "counts": state.counts}
    if isinstance(state, ops._DistinctCountState):
        return {"tag": "distinct", "sets": [set(s) for s in state.sets]}
    if isinstance(state, ops._MinMaxState):
        return {
            "tag": "minmax",
            "extremes": state.extremes,
            "seen": state.seen,
        }
    if isinstance(state, ops._AvgState):
        return {
            "tag": "avg",
            "sum": _dump_state(state.sum),
            "count": _dump_state(state.count),
        }
    if isinstance(state, ops._VarState):
        return {
            "tag": "var",
            "sum_x": _dump_sum_impl(state.sum_x),
            "sum_xx": _dump_sum_impl(state.sum_xx),
            "count": _dump_state(state.count),
        }
    if isinstance(state, vec._VecSecondMomentState):
        return {
            "tag": "moment2",
            "sum_x": _dump_sum_impl(state.sum_x),
            "sum_xx": _dump_sum_impl(state.sum_xx),
        }
    raise TypeError(f"cannot spill aggregate state {type(state).__name__}")


def _expect_tag(data: dict, tag: str) -> None:
    if not isinstance(data, dict) or data.get("tag") != tag:
        raise SpillFormatError(
            f"state payload tag mismatch: wanted {tag!r}, "
            f"got {data.get('tag') if isinstance(data, dict) else data!r}"
        )


def _load_state_into(state, data: dict) -> None:
    from ..engine import operators as ops
    from ..engine import vectorized as vec

    if isinstance(state, ops._SumState):
        _expect_tag(data, "sum")
        state.impl = _load_sum_impl(data["impl"])
    elif isinstance(state, ops._CountState):
        _expect_tag(data, "count")
        state.counts = np.asarray(data["counts"], dtype=np.int64)
    elif isinstance(state, ops._DistinctCountState):
        _expect_tag(data, "distinct")
        state.sets = [set(s) for s in data["sets"]]
        state.member_count = sum(len(s) for s in state.sets)
    elif isinstance(state, ops._MinMaxState):
        _expect_tag(data, "minmax")
        extremes = data["extremes"]
        state.extremes = None if extremes is None else np.asarray(extremes)
        state.seen = np.asarray(data["seen"], dtype=bool)
    elif isinstance(state, ops._AvgState):
        _expect_tag(data, "avg")
        _load_state_into(state.sum, data["sum"])
        _load_state_into(state.count, data["count"])
    elif isinstance(state, ops._VarState):
        _expect_tag(data, "var")
        state.sum_x = _load_sum_impl(data["sum_x"])
        state.sum_xx = _load_sum_impl(data["sum_xx"])
        _load_state_into(state.count, data["count"])
    elif isinstance(state, vec._VecSecondMomentState):
        _expect_tag(data, "moment2")
        state.sum_x = _load_sum_impl(data["sum_x"])
        state.sum_xx = _load_sum_impl(data["sum_xx"])
    else:
        raise TypeError(f"cannot restore state {type(state).__name__}")


# ---------------------------------------------------------------------------
# Partial group tables
# ---------------------------------------------------------------------------


def dump_table(table) -> bytes:
    """Serialize one partial group table (scalar or vectorized) into
    spill payload bytes."""
    ngroups = table.ngroups
    nkeys = len(table.group_exprs)
    keys = []
    for i in range(nkeys):
        keys.append(_dump_key_column(table._key_column(i)))
    payload = {
        "version": 1,
        "nkeys": nkeys,
        "ngroups": ngroups,
        "key_dtypes": (
            None if table._key_dtypes is None
            else [np.dtype(dt).str for dt in table._key_dtypes]
        ),
        "keys": keys,
        "states": [_dump_state(state) for state in table.states],
    }
    return _encode_payload(payload)


def load_table_into(payload: bytes, table) -> None:
    """Restore a run's contents into ``table`` — a *freshly built* empty
    table of the same class, group expressions, and aggregate specs as
    the one that was dumped (the external operator guarantees this).

    The table's key registry and state objects are filled in place, so
    the result merges through the ordinary exact
    :meth:`~repro.engine.operators.PartialGroupTable.merge`.
    """
    data = _decode_payload(payload)
    if not isinstance(data, dict) or data.get("version") != 1:
        raise SpillFormatError("unsupported spill payload version")
    nkeys = data["nkeys"]
    if nkeys != len(table.group_exprs):
        raise SpillFormatError("group key arity mismatch")
    if table.ngroups != (0 if nkeys else 1):
        raise ValueError("load_table_into requires a fresh empty table")
    ngroups = int(data["ngroups"])
    if data["key_dtypes"] is not None:
        table._key_dtypes = [
            np.dtype(dt).newbyteorder("=") for dt in data["key_dtypes"]
        ]
    key_columns = [
        _load_key_column(column, ngroups) for column in data["keys"]
    ]
    if nkeys:
        keys = list(zip(*[column.tolist() for column in key_columns]))
        mapping = table._bulk_register(keys)
        if table.ngroups != ngroups or not np.array_equal(
            mapping, np.arange(ngroups, dtype=np.int64)
        ):
            raise SpillFormatError("duplicate group key in spill payload")
    states = data["states"]
    if len(states) != len(table.states):
        raise SpillFormatError("aggregate state count mismatch")
    for state, state_data in zip(table.states, states):
        _load_state_into(state, state_data)
