"""Durable storage: checkpoint images + WAL replay = bit-identical recovery.

A durable database lives in one directory::

    <data-dir>/
        LOCK             # advisory file lock: one process owns the dir
        checkpoint.bin   # one spill frame: full catalog image
        wal-00000001.log # sealed WAL segments (covered by checkpoint.bin)
        wal-00000002.log # live segment: records after the checkpoint

The checkpoint is the physical state of every table — column arrays
as raw little-endian bytes, the validity/delete vector, per-row
insert/delete versions, the version-clock watermark — plus every
materialized view's *served* arrays and consumed watermark, framed and
CRC-checked exactly like a spill run file.  The WAL
(:mod:`repro.storage.wal`) holds everything committed since.

Recovery loads the checkpoint, replays the WAL tail, and lands on a
catalog whose repro-digest is **byte-identical** to the database that
crashed — reproducible aggregation makes that a machine-checkable
claim rather than a slogan.  The moving parts that make it hold:

* **Physical-effect logging.** DML records carry the exact column
  tails / masked physical indices a statement produced, so replay
  reconstructs the same physical row order (the paper's Algorithm 1
  territory: physical order is visible to IEEE sums, so recovery
  preserves it bit-for-bit rather than re-running SQL).
* **Version-skip idempotency.** Checkpoints are *fuzzy*: the WAL is
  rotated first, then tables are copied one lock at a time, so a
  record may be both inside the image and in the live segment.  Every
  record carries its row-version watermark and replay skips anything
  the image already contains — applying the log twice is a no-op.
* **Exact-merge view rebuild.** A view's maintenance state is not
  persisted; it is rebuilt by feeding the base rows visible at the
  view's consumed watermark back through the retractable states.
  Exact merge guarantees the rebuilt state finalizes to the same
  bytes the incrementally-built one did.
* **Torn-tail truncation.** A crash mid-append leaves a half record;
  recovery truncates to the last intact record.  Damage *before*
  intact records raises :class:`~repro.errors.WalCorruptError` —
  recovery never silently diverges (see :mod:`repro.storage.wal`).
"""

from __future__ import annotations

import os
import threading

import numpy as np

from ..errors import CatalogError, CheckpointError, StorageError
from .spill import (
    SpillFormatError,
    decode_payload,
    encode_payload,
    frame_payload,
    unframe_payload,
)
from .wal import WriteAheadLog, scan_wal

try:  # POSIX advisory locking; absent on Windows (single-process use)
    import fcntl
except ImportError:  # pragma: no cover - platform fallback
    fcntl = None

__all__ = ["DurableStore", "CHECKPOINT_FILE"]

CHECKPOINT_FILE = "checkpoint.bin"
LOCK_FILE = "LOCK"
_CHECKPOINT_FORMAT = "repro-checkpoint"
_CHECKPOINT_VERSION = 1


# ---------------------------------------------------------------------------
# SQL type <-> wire spec
# ---------------------------------------------------------------------------


def _type_spec(sql_type) -> tuple[str, list]:
    from ..engine.types import (
        BooleanType,
        DateType,
        DecimalSqlType,
        FloatType,
        IntType,
        VarcharType,
    )

    if isinstance(sql_type, IntType):
        return sql_type.name, []
    if isinstance(sql_type, FloatType):
        return sql_type.name, []
    if isinstance(sql_type, DecimalSqlType):
        return "DECIMAL", [int(sql_type.precision), int(sql_type.scale)]
    if isinstance(sql_type, VarcharType):
        return "VARCHAR", [int(sql_type.length)]
    if isinstance(sql_type, DateType):
        return "DATE", []
    if isinstance(sql_type, BooleanType):
        return "BOOLEAN", []
    raise CheckpointError(
        f"cannot persist column type {type(sql_type).__name__}"
    )


def _schema_spec(schema) -> list:
    out = []
    for name, sql_type in schema.columns:
        type_name, args = _type_spec(sql_type)
        out.append([name, type_name, args])
    return out


def _schema_columns(spec) -> list:
    from ..engine.types import type_from_name

    return [
        (name, type_from_name(type_name, tuple(args)))
        for name, type_name, args in spec
    ]


# ---------------------------------------------------------------------------
# Execution-shape capture for REFRESH replay
# ---------------------------------------------------------------------------

_CTX_KNOBS = (
    "workers", "morsel_size", "vectorized", "fused", "join_build",
    "memory_budget_bytes", "spill_partitions", "spill_merge_fanin",
)


def _context_spec(context) -> dict:
    """The bit-relevant execution knobs of a refresh, for the WAL."""
    return {knob: getattr(context, knob) for knob in _CTX_KNOBS}


class _ContextCache:
    """Recovery-time :class:`ExecutionContext` pool, one per distinct
    logged execution shape (old logs without a shape share a default)."""

    def __init__(self):
        self._contexts: dict = {}

    def get(self, spec: dict | None):
        from ..engine.pipeline import DEFAULT_MORSEL_SIZE, ExecutionContext

        key = (
            None if spec is None
            else tuple(sorted((k, spec[k]) for k in spec))
        )
        context = self._contexts.get(key)
        if context is None:
            if spec is None:
                context = ExecutionContext(1, DEFAULT_MORSEL_SIZE)
            else:
                context = ExecutionContext(**spec)
            self._contexts[key] = context
        return context

    def close(self) -> None:
        for context in self._contexts.values():
            context.close()
        self._contexts.clear()


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


class DurableStore:
    """One database directory: lock, checkpoint image, WAL segments.

    The store hangs off the catalog (``catalog.storage``) and every
    table/view of a durable database points back at it; the engine's
    mutation paths call the ``log_*`` methods *under their existing
    statement locks*, so the WAL observes exactly the order mutations
    were applied in.
    """

    def __init__(self, path: str, wal_sync: str = "commit",
                 checkpoint_interval: float | None = 60.0,
                 wal_limit_bytes: int = 64 << 20):
        self.path = os.path.abspath(path)
        os.makedirs(self.path, exist_ok=True)
        self.wal_sync = wal_sync
        self.checkpoint_interval = checkpoint_interval
        self.wal_limit_bytes = wal_limit_bytes
        self.catalog = None
        self.wal: WriteAheadLog | None = None
        self.closed = False
        self.checkpoints_taken = 0
        #: database-level session defaults persisted via SET-default
        self.persistent_defaults: dict = {}
        self._ckpt_lock = threading.Lock()
        self._stop = threading.Event()
        self._checkpointer: threading.Thread | None = None
        self._lock_handle = None
        self._acquire_lock()

    # -- directory lock ----------------------------------------------------
    def _acquire_lock(self) -> None:
        handle = open(os.path.join(self.path, LOCK_FILE), "a+")
        if fcntl is not None:
            try:
                fcntl.flock(handle.fileno(),
                            fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                handle.close()
                raise StorageError(
                    f"data directory {self.path!r} is locked by another "
                    f"process"
                ) from None
        self._lock_handle = handle

    def _release_lock(self) -> None:
        handle, self._lock_handle = self._lock_handle, None
        if handle is not None:
            if fcntl is not None:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                except OSError:  # pragma: no cover - defensive
                    pass
            handle.close()

    # -- recovery ----------------------------------------------------------
    def open_catalog(self, catalog) -> None:
        """Restore ``catalog`` from checkpoint + WAL, then attach for
        logging.  The catalog must be empty."""
        contexts = _ContextCache()
        first_segment = 1
        next_lsn = 1
        try:
            image_path = os.path.join(self.path, CHECKPOINT_FILE)
            if os.path.exists(image_path):
                image = self._read_checkpoint(image_path)
                first_segment = int(image["wal_segment"])
                next_lsn = int(image["next_lsn"])
                self._restore_image(catalog, image)
            for record in scan_wal(self.path, first_segment, repair=True):
                self._apply(catalog, record, contexts)
                next_lsn = int(record["lsn"]) + 1
        finally:
            contexts.close()
        self.wal = WriteAheadLog(self.path, sync=self.wal_sync)
        self.wal.set_next_lsn(next_lsn)
        self.attach(catalog)

    def attach(self, catalog) -> None:
        """Wire the catalog (and everything in it) to this store."""
        self.catalog = catalog
        catalog.attach_storage(self)

    def start_checkpointer(self) -> None:
        """Start the background WAL compactor (no-op when the interval
        is ``None``)."""
        if self.checkpoint_interval is None or self._checkpointer:
            return
        thread = threading.Thread(
            target=self._checkpoint_loop, name="repro-checkpointer",
            daemon=True,
        )
        self._checkpointer = thread
        thread.start()

    def _checkpoint_loop(self) -> None:
        poll = min(1.0, self.checkpoint_interval)
        waited = 0.0
        while not self._stop.wait(poll):
            waited += poll
            try:
                tail = self.wal.tail_bytes()
            except ValueError:
                return
            if tail and (
                waited >= self.checkpoint_interval
                or tail >= self.wal_limit_bytes
            ):
                waited = 0.0
                try:
                    self.checkpoint()
                except (StorageError, ValueError):  # pragma: no cover
                    # A failed background checkpoint only delays
                    # compaction; the WAL alone still recovers.
                    pass

    # -- checkpoint --------------------------------------------------------
    def checkpoint(self) -> int:
        """Write one full catalog image and compact the WAL behind it.

        Fuzzy and non-blocking for readers: the WAL is rotated first
        (a file open under the WAL mutex), tables and views are then
        copied one statement-lock at a time, and version-skip replay
        makes the rotation-to-copy overlap harmless.  Returns the
        image's replay-horizon segment index.
        """
        with self._ckpt_lock:
            if self.closed or self.wal is None:
                raise StorageError("durable store is closed")
            horizon = self.wal.rotate()
            next_lsn = self.wal.next_lsn
            image = self._capture_image(horizon, next_lsn)
            payload = frame_payload(encode_payload(image))
            final = os.path.join(self.path, CHECKPOINT_FILE)
            tmp = final + ".tmp"
            try:
                with open(tmp, "wb") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, final)
                dir_fd = os.open(self.path, os.O_RDONLY)
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
            except OSError as exc:
                raise CheckpointError(
                    f"cannot write checkpoint in {self.path!r}: {exc}"
                ) from exc
            self.wal.remove_segments_below(horizon)
            self.checkpoints_taken += 1
            return horizon

    def flush_wal(self) -> None:
        """Force the live WAL segment to disk (only meaningful with
        ``wal_sync='never'``; commit mode already fsyncs per record)."""
        if self.wal is not None and not self.closed:
            self.wal.flush()

    def _capture_image(self, horizon: int, next_lsn: int) -> dict:
        catalog = self.catalog
        with catalog._ddl_lock:
            tables = list(catalog._tables.values())
            views = list(catalog._views.values())
        image = {
            "format": _CHECKPOINT_FORMAT,
            "version": _CHECKPOINT_VERSION,
            "wal_segment": int(horizon),
            "next_lsn": int(next_lsn),
            "defaults": dict(self.persistent_defaults),
            "tables": [self._dump_table(table) for table in tables],
            "views": [self._dump_view(view) for view in views],
        }
        image["clock"] = int(catalog.clock.value)
        return image

    @staticmethod
    def _dump_table(table) -> dict:
        with table.lock:
            n = len(table._deleted)
            columns = {
                name: table._columns[name].array()[:n].copy()
                for name, _ in table.schema.columns
            }
            return {
                "name": table.name,
                "schema": _schema_spec(table.schema),
                "version": int(table._version),
                "inserted": np.asarray(table._inserted, dtype=np.int64),
                "deleted": np.asarray(table._deleted, dtype=np.int64),
                "columns": columns,
            }

    @staticmethod
    def _dump_view(view) -> dict:
        with view.table.lock:
            return {
                "name": view.name,
                "sql": view.select.sql(),
                "sum_mode": view.sum_config.mode,
                "levels": int(view.sum_config.levels),
                "buffer_size": view.sum_config.buffer_size,
                "watermark": int(view.watermark),
                "populated": bool(view._populated),
                "refresh_count": int(view.refresh_count),
                "ngroups": int(view.ngroups),
                "key_arrays": [np.array(a, copy=True)
                               for a in view.key_arrays],
                "agg_results": {
                    sql: np.array(a, copy=True)
                    for sql, a in view.agg_results.items()
                },
            }

    @staticmethod
    def _read_checkpoint(path: str) -> dict:
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
            image = decode_payload(unframe_payload(blob, context=path))
        except (OSError, SpillFormatError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint {path!r}: {exc}"
            ) from exc
        if (
            not isinstance(image, dict)
            or image.get("format") != _CHECKPOINT_FORMAT
            or image.get("version") != _CHECKPOINT_VERSION
        ):
            raise CheckpointError(
                f"unsupported checkpoint layout in {path!r}"
            )
        return image

    def _restore_image(self, catalog, image: dict) -> None:
        try:
            for spec in image["tables"]:
                table = catalog.create_table(
                    spec["name"], _schema_columns(spec["schema"])
                )
                table.restore_physical(
                    spec["columns"], spec["inserted"], spec["deleted"],
                    spec["version"],
                )
            for spec in image["views"]:
                view = self._make_view(catalog, spec)
                catalog.create_view(view)
                view.restore_served(
                    spec["watermark"], spec["key_arrays"],
                    spec["agg_results"], spec["ngroups"],
                    spec["populated"], spec["refresh_count"],
                )
            self.persistent_defaults.update(image.get("defaults", {}))
            catalog.clock.advance_to(int(image["clock"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed checkpoint image: {exc}"
            ) from exc

    @staticmethod
    def _make_view(catalog, spec: dict):
        from ..engine.matview import MaterializedView
        from ..engine.operators import SumConfig
        from ..engine.sql import ast, parse

        select = parse(spec["sql"])
        if not isinstance(select, ast.Select):
            raise CheckpointError(
                f"view {spec.get('name')!r} definition is not a SELECT"
            )
        config = SumConfig(
            spec["sum_mode"], int(spec["levels"]), spec["buffer_size"]
        )
        return MaterializedView(
            spec["name"], select, catalog.get, config
        )

    # -- WAL replay --------------------------------------------------------
    def _apply(self, catalog, record: dict, contexts) -> None:
        op = record.get("op")
        if op == "append":
            catalog.get(record["table"]).replay_append(
                record["version"], record["cols"]
            )
        elif op == "mask":
            catalog.get(record["table"]).replay_mask(
                record["version"], record["rows"]
            )
        elif op == "replace":
            catalog.get(record["table"]).replay_replace(
                record["version"], record["rows"], record["cols"]
            )
        elif op == "create_table":
            if record["name"] not in catalog:
                catalog.create_table(
                    record["name"], _schema_columns(record["schema"])
                )
        elif op == "attach_table":
            if record["name"] not in catalog:
                table = catalog.create_table(
                    record["name"], _schema_columns(record["schema"])
                )
                table.restore_physical(
                    record["cols"], record["inserted"], record["deleted"],
                    record["version"],
                )
        elif op == "drop_table":
            catalog.drop(record["name"], if_exists=True)
        elif op == "create_view":
            try:
                catalog.get_view(record["name"])
            except CatalogError:
                catalog.create_view(self._make_view(catalog, record))
        elif op == "drop_view":
            catalog.drop_view(record["name"], if_exists=True)
        elif op == "refresh_view":
            view = catalog.get_view(record["name"])
            watermark = int(record["watermark"])
            if watermark > view.watermark or not view._populated:
                # Replay under the *original* execution shape: repro
                # views are shape-invariant anyway, but an IEEE-mode
                # full recompute is only bit-faithful with the same
                # workers x morsel x vectorized x fused configuration.
                view.refresh(
                    contexts.get(record.get("ctx")),
                    to_version=watermark,
                )
        elif op == "set_default":
            self.persistent_defaults[record["name"]] = record["value"]
        else:
            raise CheckpointError(f"unknown WAL record op {op!r}")

    # -- logging (called by the engine under its statement locks) ----------
    def _append(self, record: dict) -> None:
        if self.closed or self.wal is None:
            return
        self.wal.append(record)

    def log_rows_appended(self, table, version: int, start: int) -> None:
        self._append({
            "op": "append",
            "table": table.name,
            "version": int(version),
            "cols": table.column_tails(start),
        })

    def log_rows_masked(self, table, version: int, hits: list) -> None:
        self._append({
            "op": "mask",
            "table": table.name,
            "version": int(version),
            "rows": np.asarray(hits, dtype=np.int64),
        })

    def log_rows_replaced(self, table, version: int, hits: list,
                          start: int) -> None:
        self._append({
            "op": "replace",
            "table": table.name,
            "version": int(version),
            "rows": np.asarray(hits, dtype=np.int64),
            "cols": table.column_tails(start),
        })

    def log_create_table(self, table) -> None:
        self._append({
            "op": "create_table",
            "name": table.name,
            "schema": _schema_spec(table.schema),
        })

    def log_attach_table(self, table) -> None:
        """A pre-populated table joined the catalog: log its full
        physical state (rows were born outside the WAL's sight)."""
        with table.lock:
            n = len(table._deleted)
            self._append({
                "op": "attach_table",
                "name": table.name,
                "schema": _schema_spec(table.schema),
                "version": int(table._version),
                "inserted": np.asarray(table._inserted, dtype=np.int64),
                "deleted": np.asarray(table._deleted, dtype=np.int64),
                "cols": {
                    name: table._columns[name].array()[:n].copy()
                    for name, _ in table.schema.columns
                },
            })

    def log_drop_table(self, name: str) -> None:
        self._append({"op": "drop_table", "name": name})

    def log_create_view(self, view) -> None:
        self._append({
            "op": "create_view",
            "name": view.name,
            "sql": view.select.sql(),
            "sum_mode": view.sum_config.mode,
            "levels": int(view.sum_config.levels),
            "buffer_size": view.sum_config.buffer_size,
        })

    def log_drop_view(self, name: str) -> None:
        self._append({"op": "drop_view", "name": name})

    def log_view_refreshed(self, view, context) -> None:
        self._append({
            "op": "refresh_view",
            "name": view.name,
            "watermark": int(view.watermark),
            "ctx": _context_spec(context),
        })

    def log_set_default(self, name: str, value) -> None:
        self.persistent_defaults[name] = value
        self._append({"op": "set_default", "name": name, "value": value})

    # -- teardown ----------------------------------------------------------
    def _stop_checkpointer(self) -> None:
        self._stop.set()
        thread, self._checkpointer = self._checkpointer, None
        if thread is not None:
            thread.join(timeout=10.0)

    def close(self) -> None:
        """Fsync the WAL, stop the checkpointer, release the directory
        lock.  Idempotent; safe on a partially constructed store."""
        if self.closed:
            self._release_lock()
            return
        self.closed = True
        self._stop_checkpointer()
        wal = self.wal
        if wal is not None:
            wal.close()
        self._release_lock()

    def simulate_crash(self) -> None:
        """Testing hook: abandon the directory the way ``kill -9``
        would — no final fsync, no checkpoint, just dropped handles.
        Everything a committed statement fsynced is still on disk;
        nothing else is."""
        if self.closed:
            self._release_lock()
            return
        self.closed = True
        self._stop_checkpointer()
        wal = self.wal
        if wal is not None:
            wal.drop_handle()
        self._release_lock()
