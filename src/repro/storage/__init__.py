"""On-disk storage formats for out-of-core execution.

The engine's aggregation states merge *exactly* (the paper's
horizontal-merge property), so partial aggregates can round-trip
through disk without changing a single result bit.  This package holds
the columnar spill format that makes that practical:
:mod:`repro.storage.spill` serializes dictionary-encoded group keys
plus every partial aggregate state — including the integer-canonical
rsum ladders of :class:`~repro.core.state.SummationState` and
:class:`~repro.aggregation.grouped.GroupedSummation` — into framed,
checksummed run files that the external GROUP BY operator
(:mod:`repro.aggregation.external_agg`) spills and re-merges.
"""

from .durable import DurableStore
from .spill import (
    SPILL_MAGIC,
    FrameDecoder,
    SpillFormatError,
    dump_buffered_repro,
    dump_grouped_summation,
    dump_summation_state,
    dump_table,
    frame_payload,
    iter_frames,
    load_buffered_repro,
    load_grouped_summation,
    load_summation_state,
    load_table_into,
    read_run_file,
    unframe_payload,
    write_run_file,
)
from .wal import WriteAheadLog

__all__ = [
    "SPILL_MAGIC",
    "DurableStore",
    "FrameDecoder",
    "SpillFormatError",
    "WriteAheadLog",
    "dump_buffered_repro",
    "dump_grouped_summation",
    "dump_summation_state",
    "dump_table",
    "frame_payload",
    "iter_frames",
    "load_buffered_repro",
    "load_grouped_summation",
    "load_summation_state",
    "load_table_into",
    "read_run_file",
    "unframe_payload",
    "write_run_file",
]
