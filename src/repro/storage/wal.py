"""Write-ahead log: framed, CRC-checked, fsync-on-commit mutation records.

Every mutating statement the engine commits — INSERT / DELETE / UPDATE
row effects, CREATE/DROP TABLE, CREATE/REFRESH/DROP MATERIALIZED VIEW,
persistent ``SET`` defaults — is appended here as **one spill frame**
(:func:`repro.storage.spill.frame_payload` around the tagged codec):
the same self-delimiting ``magic | length | payload | crc32 | end``
layout PR 4 built for run files and PR 8 reused as the shard wire.
Column data inside a record travels as raw little-endian array bytes,
so the IEEE bit patterns that make results reproducible are the bit
patterns that hit the disk.

Records carry a strictly increasing LSN.  The log is segmented
(``wal-00000001.log``, ...): a checkpoint rotates to a fresh segment
so compaction can delete everything the checkpoint image already
covers without touching the file writers append to.

Crash semantics (the contract recovery leans on):

* a **torn tail** — the file ends mid-frame, or the final frame fails
  its CRC and *nothing valid follows* — is the expected shape of a
  crash mid-append.  The reader truncates at the last valid record:
  a committed prefix, never half a record, never wrong bits.
* **mid-log damage** — a record fails its check but a later intact
  frame exists in the same or a later segment — means committed data
  was lost or mangled.  That raises :class:`~repro.errors.
  WalCorruptError`; silently skipping the hole could replay to a
  database that *differs* from the one that crashed, which is exactly
  what this engine can never do.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib

from ..errors import WalCorruptError
from .spill import (
    SPILL_MAGIC,
    decode_payload,
    encode_payload,
    frame_payload,
)

__all__ = ["WriteAheadLog", "read_segment", "scan_wal", "segment_path"]

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"
_HEAD_LEN = len(SPILL_MAGIC) + 8
_END_MARK = b"RSPLEND."
_FOOT_LEN = 4 + len(_END_MARK)
#: refuse absurd frame lengths when probing damaged bytes
_MAX_RECORD = 1 << 40


def segment_path(directory: str, index: int) -> str:
    return os.path.join(
        directory, f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"
    )


def list_segments(directory: str) -> list[tuple[int, str]]:
    """``(index, path)`` of every WAL segment, ascending."""
    out = []
    for name in os.listdir(directory):
        if name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX):
            stem = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
            try:
                out.append((int(stem), os.path.join(directory, name)))
            except ValueError:
                continue
    out.sort()
    return out


def _parse_one_frame(blob: bytes, pos: int):
    """Parse the frame starting at ``pos``; returns ``(record, end)``
    or ``None`` when the bytes there are not one intact record."""
    if blob[pos : pos + len(SPILL_MAGIC)] != SPILL_MAGIC:
        return None
    if pos + _HEAD_LEN > len(blob):
        return None
    (length,) = struct.unpack(
        "<Q", blob[pos + len(SPILL_MAGIC) : pos + _HEAD_LEN]
    )
    if length > _MAX_RECORD:
        return None
    end = pos + _HEAD_LEN + length + _FOOT_LEN
    if end > len(blob):
        return None
    payload = blob[pos + _HEAD_LEN : pos + _HEAD_LEN + length]
    (crc,) = struct.unpack(
        "<I", blob[pos + _HEAD_LEN + length : pos + _HEAD_LEN + length + 4]
    )
    if blob[end - len(_END_MARK) : end] != _END_MARK:
        return None
    if zlib.crc32(payload) != crc:
        return None
    try:
        record = decode_payload(payload)
    except Exception:
        return None
    if not isinstance(record, dict) or not isinstance(record.get("lsn"), int):
        return None
    return record, end


def _any_valid_frame_after(blob: bytes, start: int) -> bool:
    """True when any intact record frame begins at or after ``start``
    (the mid-log-corruption probe)."""
    pos = blob.find(SPILL_MAGIC, start)
    while pos != -1:
        if _parse_one_frame(blob, pos) is not None:
            return True
        pos = blob.find(SPILL_MAGIC, pos + 1)
    return False


def read_segment(path: str, repair: bool = False):
    """All intact records of one segment, in order: ``(records,
    valid_bytes)``.

    Damage after the last intact record is classified: if any intact
    frame follows the damage point it is mid-log corruption
    (:class:`WalCorruptError`); otherwise it is a torn tail and — with
    ``repair=True`` — the file is physically truncated to the valid
    prefix so the damage cannot be misread twice.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    records = []
    pos = 0
    while pos < len(blob):
        parsed = _parse_one_frame(blob, pos)
        if parsed is None:
            if _any_valid_frame_after(blob, pos + 1):
                raise WalCorruptError(
                    f"{path}: damaged record at byte {pos} with intact "
                    f"records after it — committed WAL data is corrupt"
                )
            if repair:
                with open(path, "r+b") as handle:
                    handle.truncate(pos)
                    handle.flush()
                    os.fsync(handle.fileno())
            break
        record, pos = parsed
        records.append(record)
    else:
        pos = len(blob)
    return records, pos


def scan_wal(directory: str, first_segment: int = 1, repair: bool = False):
    """Records of every segment ``>= first_segment``, in LSN order.

    A torn tail is only legal in the *last* segment: an earlier
    segment that ends mid-record while later segments hold data is
    mid-log corruption.  LSNs must be strictly increasing across the
    whole scan — a valid-looking frame with a regressing LSN means
    records were lost or reordered, which also raises.
    """
    segments = [
        (index, path) for index, path in list_segments(directory)
        if index >= first_segment
    ]
    records = []
    last_lsn = None
    for n, (index, path) in enumerate(segments):
        seg_records, valid_bytes = read_segment(path, repair=repair)
        if (
            n + 1 < len(segments)
            and valid_bytes != os.path.getsize(path)
            and any(
                os.path.getsize(later) for _, later in segments[n + 1:]
            )
        ):
            raise WalCorruptError(
                f"{path}: torn segment with non-empty segments after it"
            )
        for record in seg_records:
            lsn = record["lsn"]
            if last_lsn is not None and lsn <= last_lsn:
                raise WalCorruptError(
                    f"{path}: LSN {lsn} after {last_lsn} — records lost "
                    f"or reordered"
                )
            last_lsn = lsn
            records.append(record)
    return records


class WriteAheadLog:
    """Appender over the segment files.

    ``append`` frames one record dict (stamping the next LSN), writes
    it to the live segment, and — when ``sync='commit'``, the default —
    fsyncs before returning, so a record the caller saw succeed
    survives power loss.  ``sync='never'`` leaves flushing to the OS
    (benchmarks; crash-consistency then only covers what the kernel
    wrote back).

    Thread safety: one internal mutex orders appends; callers already
    hold their table's statement lock, and :meth:`rotate` takes only
    this mutex, so checkpointing never deadlocks against writers.
    """

    def __init__(self, directory: str, sync: str = "commit"):
        if sync not in ("commit", "never"):
            raise ValueError("wal sync must be 'commit' or 'never'")
        self.directory = directory
        self.sync = sync
        self._lock = threading.Lock()
        self._handle = None
        self.closed = False
        segments = list_segments(directory)
        self._segment = segments[-1][0] if segments else 1
        self._next_lsn = 1
        self._open_segment()

    # -- internals ---------------------------------------------------------
    def _open_segment(self) -> None:
        self._handle = open(segment_path(self.directory, self._segment), "ab")

    def _fsync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # -- append path -------------------------------------------------------
    @property
    def segment(self) -> int:
        """Index of the live (appended-to) segment."""
        return self._segment

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    def set_next_lsn(self, lsn: int) -> None:
        """Recovery hands back the first unused LSN."""
        with self._lock:
            self._next_lsn = max(self._next_lsn, int(lsn))

    def append(self, record: dict) -> int:
        """Frame, write, and (in commit mode) fsync one record; returns
        its LSN."""
        with self._lock:
            if self.closed:
                raise ValueError("write-ahead log is closed")
            lsn = self._next_lsn
            self._next_lsn += 1
            frame = frame_payload(encode_payload({"lsn": lsn, **record}))
            self._handle.write(frame)
            if self.sync == "commit":
                self._fsync()
            return lsn

    def flush(self) -> None:
        """Flush and fsync the live segment regardless of sync mode."""
        with self._lock:
            if not self.closed:
                self._fsync()

    def tail_bytes(self) -> int:
        """Bytes appended to the live segment (compaction trigger)."""
        with self._lock:
            if self.closed:
                return 0
            self._handle.flush()
            return os.path.getsize(
                segment_path(self.directory, self._segment)
            )

    # -- checkpoint support ------------------------------------------------
    def rotate(self) -> int:
        """Seal the live segment and start the next one; returns the
        new segment's index (the checkpoint's replay horizon).  Holds
        only the WAL mutex — never a table lock — so a writer blocked
        here is blocked for a file open, not for the checkpoint copy."""
        with self._lock:
            if self.closed:
                raise ValueError("write-ahead log is closed")
            self._fsync()
            self._handle.close()
            self._segment += 1
            self._open_segment()
            self._fsync()
            return self._segment

    def remove_segments_below(self, first_live: int) -> int:
        """Delete sealed segments a durable checkpoint made redundant."""
        removed = 0
        for index, path in list_segments(self.directory):
            if index < first_live:
                os.remove(path)
                removed += 1
        return removed

    # -- teardown ----------------------------------------------------------
    def close(self) -> None:
        """Fsync and release the live segment.  Idempotent."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            try:
                self._fsync()
            finally:
                self._handle.close()
                self._handle = None

    def drop_handle(self) -> None:
        """Abandon the file handle *without* the final fsync — the
        crash-simulation hook.  Bytes already fsynced (every committed
        record in commit mode) stay durable; nothing else is promised,
        which is the point."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            self._handle.close()
            self._handle = None
