"""Network client: the :class:`~repro.engine.session.Session` surface
over a socket.

:func:`connect` opens a :class:`RemoteSession` whose ``execute`` /
``explain`` behave exactly like a local session's — SELECTs come back
as ``QueryResult`` objects with **bit-identical** numeric columns
(arrays cross the wire as raw bytes, never as decimal text), DML
returns row counts, and failures raise the same typed exceptions the
engine raises locally (:class:`~repro.errors.ParseError`,
:class:`~repro.errors.CatalogError`,
:class:`~repro.errors.AdmissionError`,
:class:`~repro.errors.QueryTimeout`, ...), rehydrated from their wire
codes.

    with repro.connect(("127.0.0.1", 7474), sum_mode="repro") as s:
        s.execute("INSERT INTO t VALUES (1, 0.5)")
        total = s.execute("SELECT SUM(f) FROM t").scalar()

Session options passed to :func:`connect` (``sum_mode``, ``workers``,
``fused``, ``memory_budget``, ...) travel in the hello frame and
configure the server-side session, same knobs as ``db.session()``.
"""

from __future__ import annotations

import itertools
import socket

from ..errors import ConnectionClosed, ProtocolError, error_from_wire
from ..server.protocol import decode_result, recv_frame, send_frame

__all__ = ["RemoteSession", "connect"]


def connect(address, timeout: float | None = None, **options) -> "RemoteSession":
    """Open a session to a :class:`~repro.server.ReproServer`.

    ``address`` is ``(host, port)`` for TCP or a filesystem path (str)
    for a unix socket; ``timeout`` bounds every socket operation;
    keyword ``options`` configure the server-side session
    (``sum_mode``, ``workers``, ``fused``, ...).
    """
    if isinstance(address, str):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        address = tuple(address)
    sock.settimeout(timeout)
    try:
        sock.connect(address)
        return RemoteSession(sock, options)
    except BaseException:
        sock.close()
        raise


class RemoteSession:
    """One server-side session, driven over a blocking socket."""

    def __init__(self, sock: socket.socket, options: dict):
        self._sock = sock
        self._ids = itertools.count(1)
        self._closed = False
        #: admission/timeout limits the server reported in the hello
        self.server_info = self._call(
            {"op": "hello", "options": options}
        ).get("server", {})

    # -- the Session surface ----------------------------------------------
    def execute(self, sql_text: str):
        """Run one statement: ``QueryResult`` for SELECT, row count
        for DDL/DML.  Raises the engine's typed errors."""
        reply = self._call({"op": "execute", "sql": sql_text})
        if reply["kind"] == "rowcount":
            return reply["value"]
        return decode_result(reply["result"])

    def explain(self, sql_text: str) -> str:
        return self._call({"op": "explain", "sql": sql_text})["value"]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            send_frame(self._sock, {"id": next(self._ids), "op": "close"})
            recv_frame(self._sock)
        except (OSError, ConnectionClosed):
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return f"RemoteSession({self._sock.getsockname()!r}, {state})"

    # -- plumbing ----------------------------------------------------------
    def _call(self, message: dict) -> dict:
        if self._closed:
            raise ConnectionClosed("session is closed")
        message["id"] = next(self._ids)
        send_frame(self._sock, message)
        reply = recv_frame(self._sock)
        if reply.get("id") != message["id"]:
            raise ProtocolError(
                f"out-of-order reply: sent id {message['id']}, "
                f"got {reply.get('id')!r}"
            )
        if not reply.get("ok"):
            raise error_from_wire(reply.get("error") or {})
        return reply
