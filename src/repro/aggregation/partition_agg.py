"""PARTITIONANDAGGREGATE (paper Algorithm 4).

    1: partitions <- PARALLELPARTITION(input, key, F = f**d)
    2: for each p in partitions with index i parallel do
    3:     privateTables[i] <- HASHAGGREGATION(p)
    4: for each t in privateTables parallel do
    5:     for each (key, value) in t do
    6:         sharedTable[key] += value

Threads are simulated deterministically: the input (or the partition
list) is divided among ``threads`` workers, each worker aggregates into
private tables, and the private tables are transferred into the shared
table in worker order.  For the reproducible specs the transfer uses
the exact state merge (``operator+=(repro<ScalarT,L>)``), so the final
bits are independent of the thread count, partition depth, fan-out and
buffer size — properties the test suite asserts.  For the conventional
float spec the transfer adds finalised floats, which is exactly the
(order-sensitive) behaviour of a real engine.
"""

from __future__ import annotations

import numpy as np

from ..core.tuning import choose_partition_depth
from .accumulators import AggregatorSpec
from .hash_agg import group_ids
from .partition import DEFAULT_FANOUT, parallel_partition
from .result import GroupByResult

__all__ = ["partition_and_aggregate"]


def partition_and_aggregate(
    keys: np.ndarray,
    values: np.ndarray,
    spec: AggregatorSpec,
    depth: int | None = None,
    fanout: int = DEFAULT_FANOUT,
    threads: int = 1,
    hashing: str = "identity",
    engine: str = "numpy",
    elementwise: bool = False,
) -> GroupByResult:
    """Algorithm 4 over any accumulator spec.

    ``depth=None`` applies the offline tuning rule of Section V-C
    (Figure 9 thresholds) to the actual number of groups.
    """
    keys = np.asarray(keys)
    values = np.asarray(values)
    if keys.shape != values.shape or keys.ndim != 1:
        raise ValueError("keys and values must be equal-length 1-D arrays")
    if threads < 1:
        raise ValueError("threads must be positive")
    if depth is None:
        ngroups = np.unique(keys).size if keys.size else 0
        depth = choose_partition_depth(max(1, ngroups), fanout)

    # Line 1: partition (a no-op forwarding the input when F = 1).
    partitions = parallel_partition(
        keys, values, depth, fanout, threads=threads, hashing=hashing
    )

    # Lines 2-3: private HASHAGGREGATION per work unit.  With d = 0 the
    # single partition is instead split among the threads (each thread
    # aggregates its share of the input into a private table).
    private: list[tuple[np.ndarray, object]] = []
    if depth == 0 and threads > 1:
        k, v = partitions[0]
        bounds = np.linspace(0, k.size, threads + 1).astype(np.int64)
        work = [
            (k[bounds[t] : bounds[t + 1]], v[bounds[t] : bounds[t + 1]])
            for t in range(threads)
        ]
    else:
        work = [p for p in partitions if p[0].size]
    for part_keys, part_values in work:
        if part_keys.size == 0:
            continue
        gids, distinct = group_ids(part_keys, engine=engine, hashing=hashing)
        table = spec.make_table(len(distinct))
        if elementwise:
            spec.accumulate_elementwise(table, gids, part_values)
        else:
            spec.accumulate(table, gids, part_values)
        private.append((distinct, table))

    # Lines 4-6: transfer into the shared table in worker order.
    shared_gid: dict[int, int] = {}
    for distinct, _ in private:
        for key in distinct.tolist():
            if key not in shared_gid:
                shared_gid[key] = len(shared_gid)
    shared_keys = np.asarray(list(shared_gid.keys()), dtype=keys.dtype)
    shared_table = spec.make_table(len(shared_gid))
    for distinct, table in private:
        mapping = np.asarray(
            [shared_gid[key] for key in distinct.tolist()], dtype=np.int64
        )
        spec.merge(shared_table, table, mapping)
    return GroupByResult(shared_keys, spec.finalize(shared_table), spec.name)
