"""GROUP BY aggregation algorithms, generic over accumulator specs.

Implements the paper's operator zoo: HASHAGGREGATION,
PARTITIONANDAGGREGATE (Algorithm 4), SORTAGGREGATION, and
SHAREDAGGREGATION, all parameterised by the accumulator
(conventional float, DECIMAL(p), ``repro<ScalarT,L>``, or buffered
``repro``).
"""

from .accumulators import (
    AggregatorSpec,
    BufferedReproSpec,
    ConventionalFloatSpec,
    DecimalSpec,
    ReproSpec,
    spec_from_options,
)
from .api import group_sum
from .grouped import GroupedSummation
from .retractable import RetractableGroupedSummation
from .hash_agg import group_ids, hash_aggregate
from .hash_table import FIB_MULTIPLIER, HashTable, dense_group_ids
from .partition import (
    DEFAULT_FANOUT,
    parallel_partition,
    partition_ids,
    radix_partition,
    recursive_partition,
)
from .partition_agg import partition_and_aggregate
from .result import GroupByResult
from .shared_agg import shared_aggregate
from .sort_agg import sort_aggregate
from .streaming import StreamingGroupSum

# Imported last: the external aggregation bridges to the engine layer
# and the spill format, so it must not sit in the middle of the
# low-level imports above.
from .external_agg import (
    ExternalGroupAggregator,
    partition_ids_for_batch,
    run_external_grouped_pipeline,
    stable_key_hash,
)

__all__ = [
    "AggregatorSpec",
    "ConventionalFloatSpec",
    "DecimalSpec",
    "ReproSpec",
    "BufferedReproSpec",
    "spec_from_options",
    "group_sum",
    "GroupedSummation",
    "RetractableGroupedSummation",
    "hash_aggregate",
    "group_ids",
    "HashTable",
    "dense_group_ids",
    "FIB_MULTIPLIER",
    "partition_ids",
    "radix_partition",
    "recursive_partition",
    "parallel_partition",
    "DEFAULT_FANOUT",
    "partition_and_aggregate",
    "shared_aggregate",
    "sort_aggregate",
    "GroupByResult",
    "StreamingGroupSum",
    "ExternalGroupAggregator",
    "partition_ids_for_batch",
    "run_external_grouped_pipeline",
    "stable_key_hash",
]
