"""SHAREDAGGREGATION (Cieslewicz & Ross, paper Section VII).

All threads aggregate into one shared (lock-free) hash table.  The
interleaving of threads is decided by the OS scheduler, which is the
canonical source of run-to-run non-determinism: with conventional
floats, two runs of the *same* query on the *same* data can return
different bits.

This module simulates that interleaving deterministically-per-seed:
the input is divided into per-thread chunks, each chunk is cut into
small batches (a thread's quantum between context switches), and a
seeded RNG picks which thread's next batch runs, preserving each
thread's internal order.  Different seeds model different schedules.
The reproducibility claim is then directly testable:

* conventional floats — results vary across seeds;
* ``repro<ScalarT,L>`` — bit-identical for every seed.
"""

from __future__ import annotations

import numpy as np

from .accumulators import AggregatorSpec
from .hash_agg import group_ids
from .result import GroupByResult

__all__ = ["shared_aggregate"]


def shared_aggregate(
    keys: np.ndarray,
    values: np.ndarray,
    spec: AggregatorSpec,
    threads: int = 4,
    seed: int | None = 0,
    batch_size: int = 64,
    engine: str = "numpy",
) -> GroupByResult:
    """Aggregate through one shared table under a simulated schedule.

    ``seed`` selects the thread interleaving (None: round-robin).
    """
    keys = np.asarray(keys)
    values = np.asarray(values)
    if keys.shape != values.shape or keys.ndim != 1:
        raise ValueError("keys and values must be equal-length 1-D arrays")
    if threads < 1:
        raise ValueError("threads must be positive")
    if batch_size < 1:
        raise ValueError("batch_size must be positive")

    gids, distinct = group_ids(keys, engine=engine)
    table = spec.make_table(len(distinct))

    # Per-thread queues of (start, end) batches, consumed in order.
    chunk_bounds = np.linspace(0, keys.size, threads + 1).astype(np.int64)
    queues: list[list[tuple[int, int]]] = []
    for t in range(threads):
        lo, hi = int(chunk_bounds[t]), int(chunk_bounds[t + 1])
        queues.append(
            [(s, min(s + batch_size, hi)) for s in range(lo, hi, batch_size)]
        )

    # Schedule: an interleaving of thread ids respecting queue lengths.
    lengths = [len(q) for q in queues]
    schedule = np.repeat(np.arange(threads), lengths)
    if seed is not None:
        rng = np.random.default_rng(seed)
        schedule = rng.permutation(schedule)

    cursors = [0] * threads
    for t in schedule:
        start, end = queues[t][cursors[t]]
        cursors[t] += 1
        spec.accumulate(table, gids[start:end], values[start:end])
    return GroupByResult(distinct, spec.finalize(table), spec.name)
