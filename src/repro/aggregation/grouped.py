"""Vectorised multi-group reproducible summation.

The paper's problem with RSUM inside GROUP BY is that the HPC tuning
assumes *one* long vector, while a GROUP BY juggles many interleaved
sums.  The buffered operators solve this at the algorithm level; this
module solves it at the kernel level: :class:`GroupedSummation` runs the
anchor-extraction of :mod:`repro.core.state` for *all* groups at once
using NumPy element-wise arithmetic, with per-element anchors selected
by group id.

The final per-group states are bit-identical to feeding each group's
values through its own :class:`~repro.core.state.SummationState` — the
test suite asserts this — because:

* the ladder of a group depends only on the group's max |value| (fixed
  extractor grid), so it can be computed up-front in one segmented max;
* contributions ``q`` are a pure element-wise function of (value,
  level anchor), so NumPy lanes and a scalar loop round identically;
* contributions are accumulated as exact int64 quanta (bounds checked:
  ``|k| <= 2**(W-1)`` and chunks are capped so sums stay below 2**62).

This kernel is what makes the Python reproduction usable at millions of
rows; the paper's C++ reaches the same place with AVX + summation
buffers, which we model in :mod:`repro.simulator`.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.params import RsumParams
from ..core.state import LadderOverflowError, SummationState

__all__ = ["GroupedSummation"]

#: Ladder sentinel for "group has no finite non-zero value yet".
_EMPTY_E0 = -(2**40)

#: Chunk cap keeping int64 contribution sums exact:
#: chunk * 2**(W-1) <= 2**22 * 2**39 = 2**61 < 2**63 (binary64, W=40).
_CHUNK = 1 << 22


class GroupedSummation:
    """Reproducible running sums for ``ngroups`` groups at once."""

    def __init__(self, params: RsumParams, ngroups: int):
        if ngroups < 0:
            raise ValueError("ngroups must be non-negative")
        self.params = params
        self.ngroups = ngroups
        fmt = params.fmt
        self._m = fmt.mantissa_bits
        self._w = params.w
        self._L = params.levels
        self._emin = fmt.min_exponent
        self._emin_grid = -(-fmt.min_exponent // self._w) * self._w
        self._emax_grid = (fmt.max_exponent // self._w) * self._w
        self._dtype = fmt.dtype if fmt.dtype is not None else np.dtype(np.float64)
        self.e0 = np.full(ngroups, _EMPTY_E0, dtype=np.int64)
        self.s = [np.zeros(ngroups, dtype=np.int64) for _ in range(self._L)]
        self.c = [np.zeros(ngroups, dtype=np.int64) for _ in range(self._L)]
        self.nan_cnt = np.zeros(ngroups, dtype=np.int64)
        self.pos_cnt = np.zeros(ngroups, dtype=np.int64)
        self.neg_cnt = np.zeros(ngroups, dtype=np.int64)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(
        cls,
        params: RsumParams,
        group_ids: np.ndarray,
        values: np.ndarray,
        ngroups: int,
    ) -> "GroupedSummation":
        """Aggregate ``(group_id, value)`` pairs in one vectorised pass."""
        grouped = cls(params, ngroups)
        grouped.add_pairs(group_ids, values)
        return grouped

    def add_pairs(self, group_ids: np.ndarray, values: np.ndarray) -> None:
        """Add a batch of pairs (chunked to keep int64 sums exact)."""
        gids = np.asarray(group_ids, dtype=np.int64)
        vals = np.asarray(values, dtype=self._dtype)
        if gids.shape != vals.shape or gids.ndim != 1:
            raise ValueError("group_ids and values must be equal-length 1-D")
        if gids.size and (gids.min() < 0 or gids.max() >= self.ngroups):
            raise IndexError("group id out of range")
        for start in range(0, gids.size, _CHUNK):
            self._add_chunk(gids[start : start + _CHUNK], vals[start : start + _CHUNK])

    def add_sorted_runs(self, group_ids: np.ndarray, values: np.ndarray,
                        starts: np.ndarray | None = None) -> None:
        """Segmented fast path: add pairs whose ``group_ids`` are
        **non-decreasing** (each group's values form one contiguous run).

        This is the kernel behind the engine's vectorized aggregation
        layer (:mod:`repro.engine.vectorized`): per-group maxima and
        int64 quantum sums become ``ufunc.reduceat`` segment reductions
        instead of scattered ``ufunc.at`` updates, and when every group
        in the batch sits on the same extractor ladder the per-level
        anchors collapse to scalars.  Because quantum accumulation is
        exact int64 arithmetic and the ladder logic is replicated from
        :meth:`_add_chunk`, the resulting state is **bit-identical** to
        :meth:`add_pairs` over any permutation of the same pairs — the
        exactness that lets the engine vectorize without changing result
        bits (asserted by the test suite).
        """
        gids = np.asarray(group_ids, dtype=np.int64)
        vals = np.asarray(values, dtype=self._dtype)
        if gids.shape != vals.shape or gids.ndim != 1:
            raise ValueError("group_ids and values must be equal-length 1-D")
        if gids.size == 0:
            return
        if gids[0] < 0 or gids[-1] >= self.ngroups:
            raise IndexError("group id out of range")
        if gids.size > _CHUNK:
            # Rare huge batch: the generic chunked path keeps int64
            # quantum sums exact; the result bits are the same.
            self.add_pairs(gids, vals)
            return
        self._add_sorted_chunk(gids, vals, starts)

    @staticmethod
    def _run_starts(gids: np.ndarray) -> np.ndarray:
        return np.flatnonzero(
            np.concatenate(([True], gids[1:] != gids[:-1]))
        )

    def _add_sorted_chunk(self, gids: np.ndarray, vals: np.ndarray,
                          starts: np.ndarray | None = None) -> None:
        finite = np.isfinite(vals)
        if not finite.all():
            nan_mask = np.isnan(vals)
            np.add.at(self.nan_cnt, gids[nan_mask], 1)
            np.add.at(self.pos_cnt, gids[vals == np.inf], 1)
            np.add.at(self.neg_cnt, gids[vals == -np.inf], 1)
            gids = gids[finite]
            vals = vals[finite]
            starts = None
        nonzero = vals != 0
        if not nonzero.all():
            gids = gids[nonzero]
            vals = vals[nonzero]
            starts = None
        if gids.size == 0:
            return
        if starts is None:
            starts = self._run_starts(gids)
        seg_gids = gids[starts]

        # Ladder update: per-run max |value| via one segment reduction.
        seg_max = np.maximum.reduceat(np.abs(vals), starts)
        _, exps = np.frexp(seg_max)
        eb = exps.astype(np.int64) - 1
        raw = eb + self._m - self._w + 2
        needed = -((-raw) // self._w) * self._w
        if np.any(needed > self._emax_grid):
            raise LadderOverflowError(
                "input magnitude exceeds the extractor ladder range"
            )
        np.maximum(needed, self._emin_grid, out=needed)
        target = self.e0.copy()
        target[seg_gids] = np.maximum(target[seg_gids], needed)
        self._demote_to(target)

        e0_seg = self.e0[seg_gids]
        uniform = bool((e0_seg == e0_seg[0]).all())
        if uniform and int(e0_seg[0]) - (self._L - 1) * self._w >= self._emin:
            # All groups share one ladder and every level is normal:
            # scalar anchors, no per-element masking.
            e0 = int(e0_seg[0])
            r = vals
            for level in range(self._L):
                e_l = e0 - level * self._w
                anchor = np.ldexp(self._dtype.type(1.5), e_l)
                q = (r + anchor) - anchor
                r = r - q
                k = np.ldexp(q, self._m - e_l).astype(np.int64)
                self.s[level][seg_gids] += np.add.reduceat(k, starts)
        else:
            e0_elem = self.e0[gids]
            r = vals
            for level in range(self._L):
                e_l = e0_elem - level * self._w
                active = e_l >= self._emin
                anchor_exp = np.where(active, e_l, 0).astype(np.int32)
                anchor = np.ldexp(self._dtype.type(1.5), anchor_exp)
                q = (r + anchor) - anchor
                q = np.where(active, q, self._dtype.type(0))
                r = r - q
                shift = np.where(active, self._m - e_l, 0).astype(np.int32)
                k = np.ldexp(q, shift).astype(np.int64)
                self.s[level][seg_gids] += np.add.reduceat(k, starts)
        self._propagate()

    def _add_chunk(self, gids: np.ndarray, vals: np.ndarray) -> None:
        finite = np.isfinite(vals)
        if not finite.all():
            nan_mask = np.isnan(vals)
            np.add.at(self.nan_cnt, gids[nan_mask], 1)
            np.add.at(self.pos_cnt, gids[vals == np.inf], 1)
            np.add.at(self.neg_cnt, gids[vals == -np.inf], 1)
            gids = gids[finite]
            vals = vals[finite]
        nonzero = vals != 0
        if not nonzero.all():
            gids = gids[nonzero]
            vals = vals[nonzero]
        if gids.size == 0:
            return

        # Ladder update: per-group max |value| decides the top exponent.
        absvals = np.abs(vals)
        groupmax = np.zeros(self.ngroups, dtype=self._dtype)
        np.maximum.at(groupmax, gids, absvals)
        touched = groupmax > 0
        _, exps = np.frexp(groupmax[touched])
        eb = exps.astype(np.int64) - 1
        raw = eb + self._m - self._w + 2
        needed = -((-raw) // self._w) * self._w
        if np.any(needed > self._emax_grid):
            raise LadderOverflowError(
                "input magnitude exceeds the extractor ladder range"
            )
        np.maximum(needed, self._emin_grid, out=needed)
        target = self.e0.copy()
        tv = target[touched]
        target[touched] = np.maximum(tv, needed)
        self._demote_to(target)

        # Anchor extraction, level by level, for all elements at once.
        e0_elem = self.e0[gids]
        r = vals
        for level in range(self._L):
            e_l = e0_elem - level * self._w
            active = e_l >= self._emin
            anchor_exp = np.where(active, e_l, 0).astype(np.int32)
            anchor = np.ldexp(self._dtype.type(1.5), anchor_exp)
            q = (r + anchor) - anchor
            q = np.where(active, q, self._dtype.type(0))
            r = r - q
            shift = np.where(active, self._m - e_l, 0).astype(np.int32)
            k = np.ldexp(q, shift).astype(np.int64)
            np.add.at(self.s[level], gids, k)
        self._propagate()

    # ------------------------------------------------------------------
    # Ladder maintenance
    # ------------------------------------------------------------------
    def _demote_to(self, target_e0: np.ndarray) -> None:
        """Raise group ladders to ``target_e0`` (level shift, exact)."""
        valid = self.e0 > _EMPTY_E0
        grows = target_e0 > self.e0
        fresh = ~valid & (target_e0 > _EMPTY_E0)
        self.e0[fresh] = target_e0[fresh]
        moving = valid & grows
        if not moving.any():
            return
        shifts = np.zeros(self.ngroups, dtype=np.int64)
        shifts[moving] = (target_e0[moving] - self.e0[moving]) // self._w
        for sigma in np.unique(shifts[moving]):
            mask = shifts == sigma
            sig = int(sigma)
            for level in range(self._L - 1, -1, -1):
                src = level - sig
                if src >= 0:
                    self.s[level][mask] = self.s[src][mask]
                    self.c[level][mask] = self.c[src][mask]
                else:
                    self.s[level][mask] = 0
                    self.c[level][mask] = 0
        self.e0[moving] = target_e0[moving]

    def _propagate(self) -> None:
        """Vectorised carry propagation: canonicalise s into [0, 2**(m-2))."""
        quantum_bits = self._m - 2
        for level in range(self._L):
            s = self.s[level]
            d = s >> quantum_bits  # arithmetic shift == floor division
            np.subtract(s, d << quantum_bits, out=s)
            self.c[level] += d

    # ------------------------------------------------------------------
    # Merging (thread-private tables into the shared table)
    # ------------------------------------------------------------------
    def merge(self, other: "GroupedSummation", mapping: np.ndarray | None = None) -> None:
        """Fold ``other`` in; ``mapping[g]`` is the target group of other's g.

        ``mapping`` must be injective (each source group hits a distinct
        target), which holds when both sides are keyed group tables.
        """
        if other.params != self.params:
            raise ValueError("cannot merge with different parameters")
        if mapping is None:
            if other.ngroups != self.ngroups:
                raise ValueError("group counts differ and no mapping given")
            mapping = np.arange(self.ngroups, dtype=np.int64)
        else:
            mapping = np.asarray(mapping, dtype=np.int64)
            if mapping.size != other.ngroups:
                raise ValueError("mapping must cover all source groups")
            if np.unique(mapping).size != mapping.size:
                raise ValueError("mapping must be injective")

        np.add.at(self.nan_cnt, mapping, other.nan_cnt)
        np.add.at(self.pos_cnt, mapping, other.pos_cnt)
        np.add.at(self.neg_cnt, mapping, other.neg_cnt)

        src_valid = other.e0 > _EMPTY_E0
        if not src_valid.any():
            return
        # Raise both sides to the joint ladder.
        target = self.e0.copy()
        tgt_idx = mapping[src_valid]
        np.maximum.at(target, tgt_idx, other.e0[src_valid])
        self._demote_to(target)

        joint = self.e0[mapping]  # per-source-group target ladder
        shifts = np.zeros(other.ngroups, dtype=np.int64)
        shifts[src_valid] = (joint[src_valid] - other.e0[src_valid]) // self._w
        for sigma in np.unique(shifts[src_valid]):
            mask = src_valid & (shifts == sigma)
            sig = int(sigma)
            tgt = mapping[mask]
            for level in range(self._L):
                src = level - sig
                if src >= 0:
                    np.add.at(self.s[level], tgt, other.s[src][mask])
                    np.add.at(self.c[level], tgt, other.c[src][mask])
        self._propagate()

    # ------------------------------------------------------------------
    # Finalisation / interop
    # ------------------------------------------------------------------
    def finalize(self) -> np.ndarray:
        """Per-group reproducible sums (Equation 1, vectorised)."""
        dt = self._dtype.type
        res = np.zeros(self.ngroups, dtype=self._dtype)
        valid = self.e0 > _EMPTY_E0
        for level in range(self._L - 1, -1, -1):
            e_l = self.e0 - level * self._w
            active = valid & (e_l >= self._emin)
            exp = np.where(active, e_l, 0).astype(np.int32)
            offset = np.ldexp(self.s[level].astype(self._dtype), exp - self._m)
            carries = self.c[level].astype(self._dtype) * np.ldexp(dt(0.25), exp)
            term = offset + carries
            res = np.where(active, res + term, res)
        has_nan = (self.nan_cnt > 0) | ((self.pos_cnt > 0) & (self.neg_cnt > 0))
        res = np.where(self.pos_cnt > 0, dt(np.inf), res)
        res = np.where(self.neg_cnt > 0, dt(-np.inf), res)
        res = np.where(has_nan, dt(np.nan), res)
        return res

    def resize(self, ngroups: int) -> None:
        """Grow the table to ``ngroups`` (new groups start empty).

        Used by the streaming aggregation when previously unseen keys
        arrive; existing group states are untouched, so growth cannot
        affect any bits.
        """
        if ngroups < self.ngroups:
            raise ValueError("cannot shrink a grouped summation")
        if ngroups == self.ngroups:
            return
        extra = ngroups - self.ngroups
        self.e0 = np.concatenate(
            [self.e0, np.full(extra, _EMPTY_E0, dtype=np.int64)]
        )
        for level in range(self._L):
            self.s[level] = np.concatenate(
                [self.s[level], np.zeros(extra, dtype=np.int64)]
            )
            self.c[level] = np.concatenate(
                [self.c[level], np.zeros(extra, dtype=np.int64)]
            )
        self.nan_cnt = np.concatenate(
            [self.nan_cnt, np.zeros(extra, dtype=np.int64)]
        )
        self.pos_cnt = np.concatenate(
            [self.pos_cnt, np.zeros(extra, dtype=np.int64)]
        )
        self.neg_cnt = np.concatenate(
            [self.neg_cnt, np.zeros(extra, dtype=np.int64)]
        )
        self.ngroups = ngroups

    def nbytes(self) -> int:
        """Resident bytes of the per-group ladder arrays (the memory
        the engine's budget accounting charges for one repro-sum
        state)."""
        per_level = sum(s.nbytes + c.nbytes for s, c in zip(self.s, self.c))
        return (
            self.e0.nbytes + per_level
            + self.nan_cnt.nbytes + self.pos_cnt.nbytes + self.neg_cnt.nbytes
        )

    def to_state(self, group: int) -> SummationState:
        """Extract one group as a scalar :class:`SummationState`."""
        state = SummationState(self.params)
        if self.e0[group] > _EMPTY_E0:
            state.e0 = int(self.e0[group])
            state.s = [int(self.s[level][group]) for level in range(self._L)]
            state.c = [int(self.c[level][group]) for level in range(self._L)]
        state.nan_count = int(self.nan_cnt[group])
        state.posinf_count = int(self.pos_cnt[group])
        state.neginf_count = int(self.neg_cnt[group])
        return state

    def state_tuples(self) -> list:
        """Canonical identity per group (for reproducibility assertions)."""
        return [self.to_state(g).state_tuple() for g in range(self.ngroups)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GroupedSummation({self.ngroups} groups, L={self._L}, "
            f"{self.params.fmt.name})"
        )
