"""Vectorised multi-group reproducible summation.

The paper's problem with RSUM inside GROUP BY is that the HPC tuning
assumes *one* long vector, while a GROUP BY juggles many interleaved
sums.  The buffered operators solve this at the algorithm level; this
module solves it at the kernel level: :class:`GroupedSummation` runs the
anchor-extraction of :mod:`repro.core.state` for *all* groups at once
using NumPy element-wise arithmetic, with per-element anchors selected
by group id.

The final per-group states are bit-identical to feeding each group's
values through its own :class:`~repro.core.state.SummationState` — the
test suite asserts this — because:

* the ladder of a group depends only on the group's max |value| (fixed
  extractor grid), so it can be computed up-front in one segmented max;
* contributions ``q`` are a pure element-wise function of (value,
  level anchor), so NumPy lanes and a scalar loop round identically;
* contributions are accumulated as exact int64 quanta (bounds checked:
  ``|k| <= 2**(W-1)`` and chunks are capped so sums stay below 2**62).

This kernel is what makes the Python reproduction usable at millions of
rows; the paper's C++ reaches the same place with AVX + summation
buffers, which we model in :mod:`repro.simulator`.
"""

from __future__ import annotations

import math
import threading

import numpy as np

from ..core.params import RsumParams
from ..core.state import LadderOverflowError, SummationState

__all__ = ["GroupedSummation", "add_pairs_multi", "add_sorted_runs_multi"]

#: Ladder sentinel for "group has no finite non-zero value yet".
_EMPTY_E0 = -(2**40)

#: Chunk cap keeping int64 contribution sums exact:
#: chunk * 2**(W-1) <= 2**22 * 2**39 = 2**61 < 2**63 (binary64, W=40).
_CHUNK = 1 << 22


class GroupedSummation:
    """Reproducible running sums for ``ngroups`` groups at once."""

    def __init__(self, params: RsumParams, ngroups: int):
        if ngroups < 0:
            raise ValueError("ngroups must be non-negative")
        self.params = params
        self.ngroups = ngroups
        fmt = params.fmt
        self._m = fmt.mantissa_bits
        self._w = params.w
        self._L = params.levels
        self._emin = fmt.min_exponent
        self._emin_grid = -(-fmt.min_exponent // self._w) * self._w
        self._emax_grid = (fmt.max_exponent // self._w) * self._w
        self._dtype = fmt.dtype if fmt.dtype is not None else np.dtype(np.float64)
        self.e0 = np.full(ngroups, _EMPTY_E0, dtype=np.int64)
        self.s = [np.zeros(ngroups, dtype=np.int64) for _ in range(self._L)]
        self.c = [np.zeros(ngroups, dtype=np.int64) for _ in range(self._L)]
        self.nan_cnt = np.zeros(ngroups, dtype=np.int64)
        self.pos_cnt = np.zeros(ngroups, dtype=np.int64)
        self.neg_cnt = np.zeros(ngroups, dtype=np.int64)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(
        cls,
        params: RsumParams,
        group_ids: np.ndarray,
        values: np.ndarray,
        ngroups: int,
    ) -> "GroupedSummation":
        """Aggregate ``(group_id, value)`` pairs in one vectorised pass."""
        grouped = cls(params, ngroups)
        grouped.add_pairs(group_ids, values)
        return grouped

    def add_pairs(self, group_ids: np.ndarray, values: np.ndarray) -> None:
        """Add a batch of pairs (chunked to keep int64 sums exact)."""
        gids = np.asarray(group_ids, dtype=np.int64)
        vals = np.asarray(values, dtype=self._dtype)
        if gids.shape != vals.shape or gids.ndim != 1:
            raise ValueError("group_ids and values must be equal-length 1-D")
        if gids.size and (gids.min() < 0 or gids.max() >= self.ngroups):
            raise IndexError("group id out of range")
        for start in range(0, gids.size, _CHUNK):
            self._add_chunk(gids[start : start + _CHUNK], vals[start : start + _CHUNK])

    def add_sorted_runs(self, group_ids: np.ndarray, values: np.ndarray,
                        starts: np.ndarray | None = None) -> None:
        """Segmented fast path: add pairs whose ``group_ids`` are
        **non-decreasing** (each group's values form one contiguous run).

        This is the kernel behind the engine's vectorized aggregation
        layer (:mod:`repro.engine.vectorized`): per-group maxima and
        int64 quantum sums become ``ufunc.reduceat`` segment reductions
        instead of scattered ``ufunc.at`` updates, and when every group
        in the batch sits on the same extractor ladder the per-level
        anchors collapse to scalars.  Because quantum accumulation is
        exact int64 arithmetic and the ladder logic is replicated from
        :meth:`_add_chunk`, the resulting state is **bit-identical** to
        :meth:`add_pairs` over any permutation of the same pairs — the
        exactness that lets the engine vectorize without changing result
        bits (asserted by the test suite).
        """
        gids = np.asarray(group_ids, dtype=np.int64)
        vals = np.asarray(values, dtype=self._dtype)
        if gids.shape != vals.shape or gids.ndim != 1:
            raise ValueError("group_ids and values must be equal-length 1-D")
        if gids.size == 0:
            return
        if gids[0] < 0 or gids[-1] >= self.ngroups:
            raise IndexError("group id out of range")
        if gids.size > _CHUNK:
            # Rare huge batch: the generic chunked path keeps int64
            # quantum sums exact; the result bits are the same.
            self.add_pairs(gids, vals)
            return
        self._add_sorted_chunk(gids, vals, starts)

    @staticmethod
    def _run_starts(gids: np.ndarray) -> np.ndarray:
        return np.flatnonzero(
            np.concatenate(([True], gids[1:] != gids[:-1]))
        )

    def _add_sorted_chunk(self, gids: np.ndarray, vals: np.ndarray,
                          starts: np.ndarray | None = None) -> None:
        finite = np.isfinite(vals)
        if not finite.all():
            nan_mask = np.isnan(vals)
            np.add.at(self.nan_cnt, gids[nan_mask], 1)
            np.add.at(self.pos_cnt, gids[vals == np.inf], 1)
            np.add.at(self.neg_cnt, gids[vals == -np.inf], 1)
            gids = gids[finite]
            vals = vals[finite]
            starts = None
        nonzero = vals != 0
        if not nonzero.all():
            gids = gids[nonzero]
            vals = vals[nonzero]
            starts = None
        if gids.size == 0:
            return
        if starts is None:
            starts = self._run_starts(gids)
        seg_gids = gids[starts]

        # Ladder update: per-run max |value| via one segment reduction.
        seg_max = np.maximum.reduceat(np.abs(vals), starts)
        _, exps = np.frexp(seg_max)
        eb = exps.astype(np.int64) - 1
        raw = eb + self._m - self._w + 2
        needed = -((-raw) // self._w) * self._w
        if np.any(needed > self._emax_grid):
            raise LadderOverflowError(
                "input magnitude exceeds the extractor ladder range"
            )
        np.maximum(needed, self._emin_grid, out=needed)
        target = self.e0.copy()
        target[seg_gids] = np.maximum(target[seg_gids], needed)
        self._demote_to(target)

        e0_seg = self.e0[seg_gids]
        uniform = bool((e0_seg == e0_seg[0]).all())
        if uniform and int(e0_seg[0]) - (self._L - 1) * self._w >= self._emin:
            # All groups share one ladder and every level is normal:
            # scalar anchors, no per-element masking.
            e0 = int(e0_seg[0])
            r = vals
            for level in range(self._L):
                e_l = e0 - level * self._w
                anchor = np.ldexp(self._dtype.type(1.5), e_l)
                q = (r + anchor) - anchor
                r = r - q
                k = np.ldexp(q, self._m - e_l).astype(np.int64)
                self.s[level][seg_gids] += np.add.reduceat(k, starts)
        else:
            self._sweep_segments_elementwise(gids, vals, starts, seg_gids)
        self._propagate()

    def _sweep_segments_elementwise(self, gids: np.ndarray, vals: np.ndarray,
                                    starts: np.ndarray,
                                    seg_gids: np.ndarray) -> None:
        """Per-element-anchor sweep of one sorted run batch (groups on
        mixed ladders, or levels below the normal range).  Caller owns
        the ladder demotion beforehand and :meth:`_propagate` after."""
        e0_elem = self.e0[gids]
        r = vals
        for level in range(self._L):
            e_l = e0_elem - level * self._w
            active = e_l >= self._emin
            anchor_exp = np.where(active, e_l, 0).astype(np.int32)
            anchor = np.ldexp(self._dtype.type(1.5), anchor_exp)
            q = (r + anchor) - anchor
            q = np.where(active, q, self._dtype.type(0))
            r = r - q
            shift = np.where(active, self._m - e_l, 0).astype(np.int32)
            k = np.ldexp(q, shift).astype(np.int64)
            self.s[level][seg_gids] += np.add.reduceat(k, starts)

    def _add_chunk(self, gids: np.ndarray, vals: np.ndarray) -> None:
        finite = np.isfinite(vals)
        if not finite.all():
            nan_mask = np.isnan(vals)
            np.add.at(self.nan_cnt, gids[nan_mask], 1)
            np.add.at(self.pos_cnt, gids[vals == np.inf], 1)
            np.add.at(self.neg_cnt, gids[vals == -np.inf], 1)
            gids = gids[finite]
            vals = vals[finite]
        nonzero = vals != 0
        if not nonzero.all():
            gids = gids[nonzero]
            vals = vals[nonzero]
        if gids.size == 0:
            return

        # Ladder update: per-group max |value| decides the top exponent.
        absvals = np.abs(vals)
        groupmax = np.zeros(self.ngroups, dtype=self._dtype)
        np.maximum.at(groupmax, gids, absvals)
        touched = groupmax > 0
        _, exps = np.frexp(groupmax[touched])
        eb = exps.astype(np.int64) - 1
        raw = eb + self._m - self._w + 2
        needed = -((-raw) // self._w) * self._w
        if np.any(needed > self._emax_grid):
            raise LadderOverflowError(
                "input magnitude exceeds the extractor ladder range"
            )
        np.maximum(needed, self._emin_grid, out=needed)
        target = self.e0.copy()
        tv = target[touched]
        target[touched] = np.maximum(tv, needed)
        self._demote_to(target)

        # Anchor extraction, level by level, for all elements at once.
        e0_elem = self.e0[gids]
        r = vals
        for level in range(self._L):
            e_l = e0_elem - level * self._w
            active = e_l >= self._emin
            anchor_exp = np.where(active, e_l, 0).astype(np.int32)
            anchor = np.ldexp(self._dtype.type(1.5), anchor_exp)
            q = (r + anchor) - anchor
            q = np.where(active, q, self._dtype.type(0))
            r = r - q
            shift = np.where(active, self._m - e_l, 0).astype(np.int32)
            k = np.ldexp(q, shift).astype(np.int64)
            np.add.at(self.s[level], gids, k)
        self._propagate()

    # ------------------------------------------------------------------
    # Ladder maintenance
    # ------------------------------------------------------------------
    def _demote_to(self, target_e0: np.ndarray) -> None:
        """Raise group ladders to ``target_e0`` (level shift, exact)."""
        valid = self.e0 > _EMPTY_E0
        grows = target_e0 > self.e0
        fresh = ~valid & (target_e0 > _EMPTY_E0)
        self.e0[fresh] = target_e0[fresh]
        moving = valid & grows
        if not moving.any():
            return
        shifts = np.zeros(self.ngroups, dtype=np.int64)
        shifts[moving] = (target_e0[moving] - self.e0[moving]) // self._w
        for sigma in np.unique(shifts[moving]):
            mask = shifts == sigma
            sig = int(sigma)
            for level in range(self._L - 1, -1, -1):
                src = level - sig
                if src >= 0:
                    self.s[level][mask] = self.s[src][mask]
                    self.c[level][mask] = self.c[src][mask]
                else:
                    self.s[level][mask] = 0
                    self.c[level][mask] = 0
        self.e0[moving] = target_e0[moving]

    def _propagate(self) -> None:
        """Vectorised carry propagation: canonicalise s into [0, 2**(m-2))."""
        quantum_bits = self._m - 2
        for level in range(self._L):
            s = self.s[level]
            d = s >> quantum_bits  # arithmetic shift == floor division
            np.subtract(s, d << quantum_bits, out=s)
            self.c[level] += d

    # ------------------------------------------------------------------
    # Merging (thread-private tables into the shared table)
    # ------------------------------------------------------------------
    def merge(self, other: "GroupedSummation", mapping: np.ndarray | None = None) -> None:
        """Fold ``other`` in; ``mapping[g]`` is the target group of other's g.

        ``mapping`` must be injective (each source group hits a distinct
        target), which holds when both sides are keyed group tables.
        """
        if other.params != self.params:
            raise ValueError("cannot merge with different parameters")
        if mapping is None:
            if other.ngroups != self.ngroups:
                raise ValueError("group counts differ and no mapping given")
            mapping = np.arange(self.ngroups, dtype=np.int64)
        else:
            mapping = np.asarray(mapping, dtype=np.int64)
            if mapping.size != other.ngroups:
                raise ValueError("mapping must cover all source groups")
            if np.unique(mapping).size != mapping.size:
                raise ValueError("mapping must be injective")

        np.add.at(self.nan_cnt, mapping, other.nan_cnt)
        np.add.at(self.pos_cnt, mapping, other.pos_cnt)
        np.add.at(self.neg_cnt, mapping, other.neg_cnt)

        src_valid = other.e0 > _EMPTY_E0
        if not src_valid.any():
            return
        # Raise both sides to the joint ladder.
        target = self.e0.copy()
        tgt_idx = mapping[src_valid]
        np.maximum.at(target, tgt_idx, other.e0[src_valid])
        self._demote_to(target)

        joint = self.e0[mapping]  # per-source-group target ladder
        shifts = np.zeros(other.ngroups, dtype=np.int64)
        shifts[src_valid] = (joint[src_valid] - other.e0[src_valid]) // self._w
        for sigma in np.unique(shifts[src_valid]):
            mask = src_valid & (shifts == sigma)
            sig = int(sigma)
            tgt = mapping[mask]
            for level in range(self._L):
                src = level - sig
                if src >= 0:
                    np.add.at(self.s[level], tgt, other.s[src][mask])
                    np.add.at(self.c[level], tgt, other.c[src][mask])
        self._propagate()

    # ------------------------------------------------------------------
    # Finalisation / interop
    # ------------------------------------------------------------------
    def finalize(self) -> np.ndarray:
        """Per-group reproducible sums (Equation 1, vectorised)."""
        dt = self._dtype.type
        res = np.zeros(self.ngroups, dtype=self._dtype)
        valid = self.e0 > _EMPTY_E0
        for level in range(self._L - 1, -1, -1):
            e_l = self.e0 - level * self._w
            active = valid & (e_l >= self._emin)
            exp = np.where(active, e_l, 0).astype(np.int32)
            offset = np.ldexp(self.s[level].astype(self._dtype), exp - self._m)
            carries = self.c[level].astype(self._dtype) * np.ldexp(dt(0.25), exp)
            term = offset + carries
            res = np.where(active, res + term, res)
        has_nan = (self.nan_cnt > 0) | ((self.pos_cnt > 0) & (self.neg_cnt > 0))
        res = np.where(self.pos_cnt > 0, dt(np.inf), res)
        res = np.where(self.neg_cnt > 0, dt(-np.inf), res)
        res = np.where(has_nan, dt(np.nan), res)
        return res

    def resize(self, ngroups: int) -> None:
        """Grow the table to ``ngroups`` (new groups start empty).

        Used by the streaming aggregation when previously unseen keys
        arrive; existing group states are untouched, so growth cannot
        affect any bits.
        """
        if ngroups < self.ngroups:
            raise ValueError("cannot shrink a grouped summation")
        if ngroups == self.ngroups:
            return
        extra = ngroups - self.ngroups
        self.e0 = np.concatenate(
            [self.e0, np.full(extra, _EMPTY_E0, dtype=np.int64)]
        )
        for level in range(self._L):
            self.s[level] = np.concatenate(
                [self.s[level], np.zeros(extra, dtype=np.int64)]
            )
            self.c[level] = np.concatenate(
                [self.c[level], np.zeros(extra, dtype=np.int64)]
            )
        self.nan_cnt = np.concatenate(
            [self.nan_cnt, np.zeros(extra, dtype=np.int64)]
        )
        self.pos_cnt = np.concatenate(
            [self.pos_cnt, np.zeros(extra, dtype=np.int64)]
        )
        self.neg_cnt = np.concatenate(
            [self.neg_cnt, np.zeros(extra, dtype=np.int64)]
        )
        self.ngroups = ngroups

    def nbytes(self) -> int:
        """Resident bytes of the per-group ladder arrays (the memory
        the engine's budget accounting charges for one repro-sum
        state)."""
        per_level = sum(s.nbytes + c.nbytes for s, c in zip(self.s, self.c))
        return (
            self.e0.nbytes + per_level
            + self.nan_cnt.nbytes + self.pos_cnt.nbytes + self.neg_cnt.nbytes
        )

    def to_state(self, group: int) -> SummationState:
        """Extract one group as a scalar :class:`SummationState`."""
        state = SummationState(self.params)
        if self.e0[group] > _EMPTY_E0:
            state.e0 = int(self.e0[group])
            state.s = [int(self.s[level][group]) for level in range(self._L)]
            state.c = [int(self.c[level][group]) for level in range(self._L)]
        state.nan_count = int(self.nan_cnt[group])
        state.posinf_count = int(self.pos_cnt[group])
        state.neginf_count = int(self.neg_cnt[group])
        return state

    def state_tuples(self) -> list:
        """Canonical identity per group (for reproducibility assertions)."""
        return [self.to_state(g).state_tuple() for g in range(self.ngroups)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GroupedSummation({self.ngroups} groups, L={self._L}, "
            f"{self.params.fmt.name})"
        )


#: Largest element count the batched walk keeps persistent scratch for
#: (beyond it, buffers are allocated per call rather than pinned).
_WALK_SCRATCH_CAP = 1 << 18

_WALK_SCRATCH = threading.local()


def _walk_buffers(count: int, dtype) -> tuple:
    """Thread-local ``(float, float, int64)`` scratch for the batched walk.

    The walk's temporaries are as large as the morsel block itself, so
    freshly allocating them every call means every pass streams through
    cold pages.  Reusing one buffer set per thread keeps those pages
    warm in cache from morsel to morsel; per-worker tables make the
    walk thread-confined, so ``threading.local`` is the whole story.
    Oversized requests fall back to plain allocation to keep the pinned
    footprint bounded.
    """
    if count > _WALK_SCRATCH_CAP:
        return (np.empty(count, dtype=dtype), np.empty(count, dtype=dtype),
                np.empty(count, dtype=np.int64))
    bufs = getattr(_WALK_SCRATCH, "bufs", None)
    if bufs is None:
        bufs = _WALK_SCRATCH.bufs = {}
    entry = bufs.get(dtype)
    if entry is None or entry[0].size < count:
        cap = min(max(count, 1 << 14), _WALK_SCRATCH_CAP)
        entry = (np.empty(cap, dtype=dtype), np.empty(cap, dtype=dtype),
                 np.empty(cap, dtype=np.int64))
        bufs[dtype] = entry
    return entry


def add_pairs_multi(tables: list, group_ids: np.ndarray,
                    values_rows: list, checked: bool = True) -> bool:
    """Scatter fast path for the steady state: feed unsorted pairs to
    several ladder tables with **no sort, no gather, no run starts**.

    Applies only when, for every table, the whole ladder already sits
    on one uniform top exponent high enough for this batch (checked
    against each column's global |max|), every value is finite, and
    ``n * 2**(w-1) <= 2**53`` so that float64 partial sums of the
    integral-valued quanta are exact in any accumulation order — then
    ``np.bincount`` scatter-sums replace the segment machinery
    entirely.  Returns ``False`` (with nothing mutated) when any
    precondition fails; the caller then takes the sorted path.

    The exactness window ``n <= 2**(54-w)`` holds for binary32 ladders
    with the *same* bound as binary64, because neither side of the
    argument depends on the value format's significand width:

    * the quantum bound is format-independent — the no-demote
      precondition gives ``eb + m - w + 2 <= e0`` per column, so every
      level quantum ``q = k * 2**(e_l - m)`` has
      ``|k| <= 2**(eb + 1 - e0 + m) <= 2**(w-1)`` whether ``m`` is 52
      or 23;
    * the accumulator is format-independent — ``np.bincount`` converts
      its weights to float64 before summing, and every binary32
      quantum converts exactly (float32 ⊂ float64), so each partial
      sum is an exact integer multiple of ``2**(e_l - m)`` with
      integer part at most ``n * 2**(w-1) <= 2**53``, representable
      and closed under addition in float64 in any order (the scale
      ``2**(e_l - m)`` stays at or above ``2**(emin - m)``, far inside
      float64's range for both formats).

    The per-element arithmetic stays in the table dtype either way:
    the anchors ``ldexp(dt(1.5), e_l)`` are exact in binary32 for
    every in-range ``e_l >= emin`` (one significand bit), and the
    quantum extraction writes through same-dtype scratch — so each
    float32 quantum is bit-identical to the reference walk's, and
    ``np.ldexp(sums, m - e_l)`` lifts the exact float64 bin sums to
    whole int64 quanta exactly.

    ``checked=False`` skips the group-id range scan for callers that
    construct the ids themselves (the fused kernels); out-of-range ids
    are then undefined behavior exactly like any unchecked kernel.

    Bit-identity with the per-table reference walk: no table demotes
    (``needed <= e0`` for every group by the global-max check), the
    anchor extraction is element-wise so each value's quantum is the
    value the reference computes, quanta are exact integers whose
    float64 partial sums stay below 2**53 (every partial representable
    — order cannot change the total), and zeros extract a zero quantum
    at every level, making them exact no-ops just as in the
    zero-filtering reference (including the group-absent case:
    ``s += 0`` on a canonical state, then an idempotent propagate).
    """
    tables = list(tables)
    if not tables:
        return True
    first = tables[0]
    for table in tables[1:]:
        if table.params != first.params:
            raise ValueError("add_pairs_multi requires identical parameters")
    gids = np.asarray(group_ids, dtype=np.int64)
    n = gids.size
    if len(values_rows) != len(tables):
        raise ValueError("one values row per table required")
    if n == 0:
        return True
    m, w, levels = first._m, first._w, first._L
    # binary64 and binary32 ladders share the n <= 2**(54-w) window:
    # the quantum bound |k| <= 2**(w-1) and the float64 bincount
    # accumulator are both independent of the value format (see the
    # docstring); any other dtype declines to the reference walk.
    if first._dtype.itemsize not in (4, 8) or w > 53 or n > 1 << (54 - w):
        return False
    emin_floor = first._emin + (levels - 1) * w
    e0s = []
    for table in tables:
        lo = int(table.e0.min())
        if lo < emin_floor or lo != int(table.e0.max()):
            return False
        e0s.append(lo)
    if checked and (int(gids.min()) < 0
                    or int(gids.max()) >= min(t.ngroups for t in tables)):
        return False  # let the sorted path raise the reference error
    rows = [np.asarray(r, dtype=first._dtype) for r in values_rows]
    his = []
    for vals, e0 in zip(rows, e0s):
        # max/min propagate NaN and catch ±inf without a full |.| pass
        hi = max(float(vals.max()), -float(vals.min()))
        if not hi <= first.params.fmt.max_value:  # NaN or +inf
            return False
        if hi > 0:
            eb = math.frexp(hi)[1] - 1
            if -(-(eb + m - w + 2) // w) * w > e0:
                return False  # a demote would be needed somewhere
        his.append(hi)

    dt = first._dtype.type
    qbuf, rbuf, _ = _walk_buffers(n, first._dtype)
    q = qbuf[:n]
    r = rbuf[:n]
    for vals, table, e0, hi in zip(rows, tables, e0s, his):
        if hi == 0:
            continue  # all-zero column: exact no-op, as in the reference
        src = vals
        for level in range(levels):
            e_l = e0 - level * w
            anchor = np.ldexp(dt(1.5), e_l)
            np.add(src, anchor, out=q)
            np.subtract(q, anchor, out=q)
            if level + 1 < levels:
                np.subtract(src, q, out=r)
                src = r
            sums = np.bincount(gids, weights=q, minlength=table.ngroups)
            # Sums are exact multiples of the level grid; ldexp lifts
            # them to whole quanta exactly (the shift can exceed the
            # power-of-two-float range near ``emin``, so no ``2.0**p``).
            table.s[level] += np.ldexp(sums, m - e_l).astype(np.int64)
        table._propagate()
    return True


def add_sorted_runs_multi(tables: list, group_ids: np.ndarray,
                          values: np.ndarray,
                          starts: np.ndarray | None = None) -> None:
    """Feed one sorted morsel into several ladder tables in one sweep.

    ``values`` has shape ``(len(tables), n)``; row ``i`` is consumed by
    ``tables[i]``.  All tables must share identical :class:`RsumParams`.
    The states produced are bit-identical to calling
    ``tables[i].add_sorted_runs(group_ids, values[i], starts)`` for each
    table in turn: quantum accumulation is exact int64 arithmetic and the
    anchor extraction is element-wise, so batching the per-level sweeps
    across a 2-D array (one ``reduceat`` over ``axis=1`` instead of N
    ladder walks) cannot change any bits.  This is the engine's
    multi-aggregate amortization: TPC-H Q1's five repro sums share one
    sorted morsel, one segment-max, and one anchor sweep per level.

    Zeros do not break the batch even though the single-table path
    filters them out before computing run starts: a zero extracts a
    zero quantum at every level and cannot change a segment's absolute
    maximum, so the accumulated state matches the zero-filtering
    reference bit for bit — *unless* filtering would leave a segment
    empty (the reference then never touches that group's ladder), in
    which case the column takes the reference path.  Columns with
    non-finite values always fall back to their own
    ``add_sorted_runs`` call (the counts and the filtered run
    structure are not batchable), as does the whole batch when any
    ladder would overflow (so the exception surfaces from the
    reference path with nothing mutated); a column whose ladders end
    up non-uniform or subnormal drops to the element-wise sweep.
    """
    tables = list(tables)
    if not tables:
        return
    first = tables[0]
    for table in tables[1:]:
        if table.params != first.params:
            raise ValueError(
                "add_sorted_runs_multi requires identical parameters"
            )
    gids = np.asarray(group_ids, dtype=np.int64)
    vals = np.asarray(values, dtype=first._dtype)
    if vals.shape != (len(tables), gids.size) or gids.ndim != 1:
        raise ValueError("values must have shape (len(tables), len(group_ids))")
    if gids.size == 0:
        return
    if gids[0] < 0 or gids[-1] >= min(t.ngroups for t in tables):
        raise IndexError("group id out of range")
    if gids.size > _CHUNK:
        for table, row in zip(tables, vals):
            table.add_sorted_runs(gids, row, starts)
        return
    if starts is None:
        starts = GroupedSummation._run_starts(gids)
    seg_gids = gids[starts]

    m, w, levels = first._m, first._w, first._L
    n = gids.size
    nseg = len(starts)
    qbuf, rbuf, kbuf = _walk_buffers(len(tables) * n, first._dtype)
    absvals = np.abs(vals, out=qbuf[:len(tables) * n].reshape(vals.shape))
    # Run starts replicated at row offsets turn every 2-D segment
    # reduction into one flat ``reduceat``: rows are contiguous, and a
    # row's trailing segment stops at the next row's offset.  The
    # first ``kb`` rows' offsets are a prefix, so the walk below can
    # reuse slices of this array for any leading block width.
    fstarts_all = (starts + (np.arange(len(tables)) * n)[:, None]).ravel()
    seg_max_all = np.maximum.reduceat(
        absvals.reshape(-1), fstarts_all
    ).reshape(len(tables), nseg)
    # One look at the segment maxima replaces full-width scans:
    # ``np.maximum`` propagates NaN and |±inf| stays inf, so a
    # non-finite maximum flags a non-finite column, and a zero maximum
    # flags a segment the zero-filtering reference path would never
    # touch (see docstring) — both take the reference path.
    ok = (np.isfinite(seg_max_all) & (seg_max_all > 0)).all(axis=1)
    batch = np.flatnonzero(ok)
    for i in np.flatnonzero(~ok):
        tables[int(i)].add_sorted_runs(gids, vals[i], starts)
    if batch.size == 0:
        return

    if batch.size == len(tables):
        sub = vals
        seg_max = seg_max_all
    else:
        sub = vals[batch]
        seg_max = seg_max_all[batch]
    _, exps = np.frexp(seg_max)
    eb = exps.astype(np.int64) - 1
    raw = eb + m - w + 2
    needed = -((-raw) // w) * w
    if np.any(needed > first._emax_grid):
        # Let the reference path raise LadderOverflowError for the
        # offending table, with earlier tables fully applied — exactly
        # the sequential per-table semantics.
        for i in batch:
            tables[int(i)].add_sorted_runs(gids, vals[i], starts)
        return
    np.maximum(needed, first._emin_grid, out=needed)

    plans: dict = {}  # uniform top exponent -> [(row in ``sub``, table)]
    emin_floor = first._emin + (levels - 1) * w
    needed_hi = needed.max(axis=1)
    for j, i in enumerate(batch):
        table = tables[int(i)]
        # Steady state: the whole table already sits on one ladder
        # high enough for this morsel.  Two scalar reductions over the
        # (tiny) e0 array decide that without touching ``seg_gids``.
        lo = int(table.e0.min())
        if needed_hi[j] <= lo and lo == int(table.e0.max()):
            if lo >= emin_floor:
                plans.setdefault(lo, []).append((j, table))
                continue
        e0_seg = table.e0[seg_gids]
        if not bool((needed[j] <= e0_seg).all()):
            target = table.e0.copy()
            target[seg_gids] = np.maximum(e0_seg, needed[j])
            table._demote_to(target)
            e0_seg = table.e0[seg_gids]
        e0 = int(e0_seg[0])
        if (bool((e0_seg == e0).all())
                and e0 - (levels - 1) * w >= table._emin):
            plans.setdefault(e0, []).append((j, table))
        elif bool((sub[j] == 0).any()):
            # The element-wise sweep is not audited for embedded
            # zeros; the reference path is (it filters them), and the
            # demotion above is idempotent under it.
            table.add_sorted_runs(gids, vals[i], starts)
        else:
            table._sweep_segments_elementwise(gids, sub[j], starts, seg_gids)
            table._propagate()
    if not plans:
        return

    # The batched walk proper.  The run structure, segment maxima, and
    # demotion targets above were computed once for all columns;
    # columns that landed on the *same* top exponent (the common case
    # — think TPC-H Q1's five price-of-ordinary-magnitude sums) then
    # share one scalar anchor per level, extracting the whole block's
    # quanta in one scalar-broadcast pass per level instead of one per
    # column.  The block is walked as a single flat vector — rows are
    # contiguous, so run starts replicated at row offsets give one
    # ``reduceat`` over every column at once (each row's trailing
    # segment stops at the next row boundary) — and every temporary
    # lands in the thread-local scratch, keeping those pages warm in
    # cache from morsel to morsel.  Scalar anchors and ``out=`` keep
    # the arithmetic the single-table fast path's verbatim, so
    # bit-identity is by construction; the remainder is dead after the
    # last level and is not materialized.
    dt = first._dtype.type
    p_lo, p_hi = (-126, 127) if first._dtype.itemsize == 4 else (-1022, 1023)
    # The ladder invariant bounds every quantum by ``|k| <= 2**(w-1)``
    # (that is what makes int64 accumulation exact under _CHUNK), so
    # when ``n * 2**(w-1) <= 2**53`` every *partial* segment sum of
    # the integral-valued ``q`` is exactly representable in binary64 —
    # the float ``reduceat`` is then exact and the whole float→int64
    # conversion pass can collapse to casting one tiny sum per
    # segment.
    float_sums = (first._dtype.itemsize == 8 and w <= 53
                  and n <= 1 << (54 - w))
    for e0, members in plans.items():
        kb = len(members)
        if kb == len(sub):
            block = sub
        elif kb == 1:
            block = sub[members[0][0]][None, :]
        else:
            block = sub[[row for row, _ in members]]
        flat = block.reshape(kb * n)
        fstarts = starts if kb == 1 else fstarts_all[:kb * nseg]
        q = qbuf[:flat.size]
        r = rbuf[:flat.size]
        kq = kbuf[:flat.size]
        src = flat
        for level in range(levels):
            e_l = e0 - level * w
            anchor = np.ldexp(dt(1.5), e_l)
            np.add(src, anchor, out=q)
            np.subtract(q, anchor, out=q)
            if level + 1 < levels:
                np.subtract(src, q, out=r)
                src = r
            p = m - e_l
            if p_lo <= p <= p_hi:
                # An exact power-of-two factor shifts the exponent just
                # like ``ldexp`` (bitwise, including overflow to inf)
                # and NumPy's multiply loop is ~2x faster than its
                # scalbn loop; out-of-range shifts keep ``ldexp``.
                np.multiply(q, dt(2.0) ** p, out=q)
            else:
                np.ldexp(q, p, out=q)
            if float_sums:
                seg_sums = np.add.reduceat(q, fstarts).astype(np.int64)
            else:
                np.copyto(kq, q, casting="unsafe")
                seg_sums = np.add.reduceat(kq, fstarts)
            for idx, (row, table) in enumerate(members):
                chunk = seg_sums[idx * nseg:(idx + 1) * nseg]
                if nseg == table.ngroups:
                    # Sorted in-range gids covering every group means
                    # ``seg_gids`` is exactly ``arange(ngroups)``.
                    table.s[level] += chunk
                else:
                    table.s[level][seg_gids] += chunk
        for row, table in members:
            table._propagate()
