"""Out-of-core (spill-to-disk) GROUP BY for the morsel pipeline.

The paper's partition-based buffered aggregation is designed so that
reproducible sums survive *any* partitioning of the input; Goodrich &
Eldawy make the same point for parallel splits.  This module turns
that property into an external aggregation operator: when the resident
partial tables exceed the session's ``memory_budget_bytes``, whole
radix partitions are serialized to disk run files
(:mod:`repro.storage.spill`) and re-merged at the end with the
ordinary exact partial-state merge.  Because every spill boundary is a
state round-trip plus an exact merge, the repro-mode result bits are
invariant under the budget, the partition fan-out, and the number of
merge passes — memory is a pure performance knob, exactly like
``workers`` and ``morsel_size``.

Operator shape (per worker)::

    morsel -> route rows to partitions by a stable hash of the group
              key -> update that partition's resident partial table
           -> budget exceeded?  spill largest partitions to run files

    finalize: per partition, exact-merge every worker's resident table
              and every run file (optionally in bounded fan-in passes,
              re-spilling intermediate merges), then fold the partition
              results into one table and finalize canonically.

The final fold means peak memory during finalize is proportional to
the *query output* (one finalized group row per group), while the
heavy intermediate state — rsum ladders, DISTINCT sets, sorted-mode
pair buffers — stays bounded by the budget.

Routing uses a process-independent key hash
(:func:`stable_key_hash`) with the engine's canonical float identity
(every NaN in one bucket, ``-0.0`` with ``0.0``), so a group's rows
always land in one partition.  Even so, correctness never *depends* on
routing: the final fold re-registers keys and exact-merges states, so
any routing would produce the same repro-mode bits.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import struct
import tempfile
import time

import numpy as np

from ..storage.spill import (
    dump_table,
    load_table_into,
    read_run_file,
    write_run_file,
)

__all__ = [
    "ExternalGroupAggregator",
    "partition_ids_for_batch",
    "run_external_grouped_pipeline",
    "stable_key_hash",
]

#: Radix-combine guard for the router (mirrors the vectorized
#: factorization): beyond this the composite codes could overflow
#: int64, so routing falls back to the first key column alone —
#: coarser but still consistent, and never a correctness issue.
_ROUTE_RADIX_MAX = 1 << 62


def stable_key_hash(key: tuple) -> int:
    """Process-independent 64-bit hash of one group-key tuple.

    Python's built-in ``hash`` is salted per process
    (``PYTHONHASHSEED``), which would make spill partition contents
    differ between runs; this hash is a pure function of the canonical
    key value.  Floats hash by their IEEE bytes after folding ``-0.0``
    into ``0.0`` and every NaN payload into one bucket — the same key
    identity the group tables use.
    """
    digest = hashlib.blake2b(digest_size=8)
    for value in key:
        if isinstance(value, (bool, np.bool_)):
            digest.update(b"\x03" + (b"1" if value else b"0"))
        elif isinstance(value, (float, np.floating)):
            fv = float(value)
            if fv != fv:  # NaN: one bucket for every payload
                digest.update(b"\x01")
            else:
                if fv == 0.0:
                    fv = 0.0  # fold -0.0
                digest.update(b"\x02" + struct.pack("<d", fv))
        elif isinstance(value, (int, np.integer)):
            digest.update(b"\x03" + str(int(value)).encode("ascii"))
        elif isinstance(value, str):
            digest.update(b"\x04" + value.encode("utf-8"))
        elif value is None:
            digest.update(b"\x05")
        else:
            digest.update(b"\x06" + repr(value).encode("utf-8"))
    return int.from_bytes(digest.digest(), "little")


def partition_ids_for_batch(batch, group_exprs, npartitions: int) -> np.ndarray:
    """Per-row spill partition ids for one morsel.

    Factorizes the key columns exactly like the group tables do
    (dictionary encodings ride along when the scan provides them), then
    hashes each *distinct* key once — the per-row cost is one gather.
    """
    if npartitions <= 1 or not group_exprs:
        return np.zeros(batch.nrows, dtype=np.int64)
    from ..engine.expr import evaluate
    from ..engine.operators import PartialGroupTable, factorize_object
    from ..engine.sql import ast

    parts = []
    total = 1
    for expr in group_exprs:
        encoding = None
        if isinstance(expr, ast.ColumnRef):
            encoding = batch.encodings.get(expr.name.lower())
        if encoding is not None:
            codes, uniques = encoding
            codes = codes.astype(np.int64, copy=False)
        else:
            arr = np.asarray(evaluate(expr, batch.columns, batch.types))
            if arr.shape == ():
                arr = np.full(batch.nrows, arr)
            if arr.dtype == object:
                codes, uniques = factorize_object(arr)
            else:
                try:
                    uniques, codes = np.unique(arr, return_inverse=True)
                except TypeError:
                    codes, uniques = factorize_object(arr)
                codes = codes.astype(np.int64, copy=False)
        total *= max(len(uniques), 1)
        parts.append((codes, uniques))
        if total >= _ROUTE_RADIX_MAX:
            parts = parts[:1]
            break

    combined = parts[0][0]
    for codes, uniques in parts[1:]:
        combined = combined * max(len(uniques), 1) + codes
    dense, inverse = np.unique(combined, return_inverse=True)
    key_columns = PartialGroupTable._decode_columns(
        dense,
        [uniques for _, uniques in parts],
        [max(len(uniques), 1) for _, uniques in parts],
    )
    pids = _hash_key_columns(key_columns, npartitions)
    return pids[inverse.astype(np.int64, copy=False)]


_MIX_C1 = np.uint64(0x9E3779B97F4A7C15)
_MIX_C2 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_C3 = np.uint64(0x94D049BB133111EB)


def _mix64(lanes: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (wrapping uint64 arithmetic)."""
    lanes = lanes + _MIX_C1
    lanes ^= lanes >> np.uint64(30)
    lanes = lanes * _MIX_C2
    lanes ^= lanes >> np.uint64(27)
    lanes = lanes * _MIX_C3
    lanes ^= lanes >> np.uint64(31)
    return lanes


def _hash_key_columns(key_columns: list, npartitions: int) -> np.ndarray:
    """Partition ids for the distinct keys (one entry per dense key).

    Numeric-only keys take a vectorized splitmix64 over canonical
    lanes; anything else hashes per distinct key with
    :func:`stable_key_hash`.  The two hashes differ — only partition
    *contents* depend on the choice, never result bits.
    """
    if all(
        column.dtype != object and column.dtype.kind in "iubf"
        for column in key_columns
    ):
        from ..engine.operators import canonical_float_bits

        size = len(key_columns[0])
        mixed = np.zeros(size, dtype=np.uint64)
        for column in key_columns:
            if column.dtype.kind == "f":
                lanes = canonical_float_bits(column.astype(np.float64))
            else:
                lanes = column.astype(np.int64).view(np.uint64)
            mixed = _mix64(mixed ^ _mix64(lanes.copy()))
        return (mixed % np.uint64(npartitions)).astype(np.int64)
    pids = np.empty(len(key_columns[0]), dtype=np.int64)
    for j in range(len(pids)):
        key = tuple(column[j] for column in key_columns)
        pids[j] = stable_key_hash(key) % npartitions
    return pids


def _split_batch(batch, pids: np.ndarray):
    """Split one morsel into per-partition pieces.

    One stable sort of the partition ids, one gather per column, then
    zero-copy slice views per partition — far cheaper than a boolean
    mask filter per partition.  Yields ``(pid, piece)`` in ascending
    partition order; the stable sort preserves row order within each
    partition.
    """
    if pids.size == 0:
        return
    first = int(pids[0])
    if bool((pids == first).all()):
        yield first, batch
        return
    from ..engine.operators import Batch

    order = np.argsort(pids, kind="stable")
    sorted_pids = pids[order]
    columns = {name: arr[order] for name, arr in batch.columns.items()}
    encodings = {
        name: (codes[order], uniques)
        for name, (codes, uniques) in batch.encodings.items()
    }
    run_starts = np.flatnonzero(
        np.concatenate(([True], sorted_pids[1:] != sorted_pids[:-1]))
    )
    bounds = np.append(run_starts, sorted_pids.size)
    for i, start in enumerate(run_starts.tolist()):
        stop = int(bounds[i + 1])
        piece = Batch(
            {name: arr[start:stop] for name, arr in columns.items()},
            batch.types,
            {
                name: (codes[start:stop], uniques)
                for name, (codes, uniques) in encodings.items()
            } or None,
        )
        yield int(sorted_pids[start]), piece


class ExternalGroupAggregator:
    """One worker's radix-partitioned, budget-bounded GROUP BY state.

    ``budget_bytes`` bounds the *resident* partial tables; when an
    update pushes the estimate past it, whole partitions are spilled
    largest-first (down to half the budget, a simple hysteresis) as
    run files under ``spill_dir`` and replaced with fresh tables.
    ``budget_bytes=None`` never spills — the operator then degrades to
    a partitioned in-memory aggregation.
    """

    def __init__(self, group_exprs, specs, make_table, npartitions: int,
                 budget_bytes: int | None, spill_dir: str, tag: str):
        if npartitions < 1:
            raise ValueError("npartitions must be >= 1")
        self.group_exprs = tuple(group_exprs)
        self.specs = specs
        self.make_table = make_table
        self.npartitions = npartitions
        self.budget_bytes = budget_bytes
        self.spill_dir = spill_dir
        self.tag = tag
        self.partitions = [
            make_table(self.group_exprs, specs) for _ in range(npartitions)
        ]
        #: run-file paths per partition, in spill order
        self.runs: list[list[str]] = [[] for _ in range(npartitions)]
        #: whole-table runs spilled before partition routing kicked in
        self.preruns: list[str] = []
        #: Until the budget first overflows, everything aggregates into
        #: one unpartitioned table — the router costs nothing when the
        #: planner's (pessimistic) estimate was wrong and the data fits.
        #: The first overflow spills that table as a *pre-partition*
        #: run (merged directly into the final fold) and promotes the
        #: aggregator to routed mode.
        self._single = (
            make_table(self.group_exprs, specs)
            if npartitions > 1 and budget_bytes is not None else None
        )
        self.runs_spilled = 0
        self.bytes_spilled = 0
        self.peak_resident_bytes = 0
        self._seq = 0
        #: cached approx_bytes per partition — only partitions touched
        #: by an update are re-measured, so budget accounting costs
        #: O(touched state), not O(all resident state), per morsel
        self._sizes = [0] * npartitions

    # -- consumption -------------------------------------------------------
    def update(self, batch) -> None:
        if batch.nrows == 0:
            return
        if self._single is not None:
            self._single.update(batch)
            self._maybe_promote()
            return
        if self.npartitions == 1:
            self.partitions[0].update(batch)
            self._sizes[0] = self.partitions[0].approx_bytes()
        else:
            pids = partition_ids_for_batch(
                batch, self.group_exprs, self.npartitions
            )
            for p, piece in _split_batch(batch, pids):
                self.partitions[p].update(piece)
                self._sizes[p] = self.partitions[p].approx_bytes()
        self._maybe_spill()

    def _maybe_promote(self) -> None:
        size = self._single.approx_bytes()
        self.peak_resident_bytes = max(self.peak_resident_bytes, size)
        if size <= self.budget_bytes:
            return
        path = os.path.join(
            self.spill_dir, f"{self.tag}-pre-r{self._seq:06d}.run"
        )
        self._seq += 1
        self.bytes_spilled += write_run_file(path, dump_table(self._single))
        self.preruns.append(path)
        self.runs_spilled += 1
        self._single = None  # promoted: route from now on

    def resident_bytes(self) -> int:
        if self._single is not None:
            return self._single.approx_bytes()
        return sum(self._sizes)

    def _maybe_spill(self) -> None:
        if self.budget_bytes is None:
            return
        total = sum(self._sizes)
        self.peak_resident_bytes = max(self.peak_resident_bytes, total)
        if total <= self.budget_bytes:
            return
        order = sorted(
            range(self.npartitions),
            key=lambda p: self._sizes[p],
            reverse=True,
        )
        target = self.budget_bytes // 2
        for p in order:
            if not self.partitions[p].ngroups:
                continue
            total -= self._sizes[p]
            self.spill_partition(p)
            if total <= target:
                break

    def spill_partition(self, p: int) -> str:
        """Serialize partition ``p``'s table to a run file and reset it."""
        path = os.path.join(
            self.spill_dir, f"{self.tag}-p{p:04d}-r{self._seq:06d}.run"
        )
        self._seq += 1
        payload = dump_table(self.partitions[p])
        written = write_run_file(path, payload)
        self.runs[p].append(path)
        self.runs_spilled += 1
        self.bytes_spilled += written
        self.partitions[p] = self.make_table(self.group_exprs, self.specs)
        self._sizes[p] = 0
        return path


def _load_run(path: str, make_table, group_exprs, specs):
    fresh = make_table(group_exprs, specs)
    load_table_into(read_run_file(path), fresh)
    return fresh


def _merge_runs_multipass(runs: list[str], fanin: int, make_table,
                          group_exprs, specs, spill_dir: str,
                          partition: int, accounting: dict) -> list[str]:
    """Bounded fan-in merge: while more runs than ``fanin`` exist,
    merge groups of ``fanin`` into intermediate run files (exact, so
    the pass count cannot change any repro-mode bits).  ``fanin < 2``
    means unbounded — a single direct pass."""
    passes = 0
    while fanin >= 2 and len(runs) > fanin:
        merged: list[str] = []
        for start in range(0, len(runs), fanin):
            chunk = runs[start : start + fanin]
            if len(chunk) == 1:
                merged.append(chunk[0])
                continue
            acc = make_table(group_exprs, specs)
            for path in chunk:
                acc.merge(_load_run(path, make_table, group_exprs, specs))
                os.unlink(path)
            out = os.path.join(
                spill_dir,
                f"merge-p{partition:04d}-pass{passes:03d}-{start:06d}.run",
            )
            written = write_run_file(out, dump_table(acc))
            accounting["runs"] += 1
            accounting["bytes"] += written
            merged.append(out)
        runs = merged
        passes += 1
    accounting["passes"] += passes
    return runs


def run_external_grouped_pipeline(
    group_exprs,
    specs,
    morsels,
    where,
    context,
    timings=None,
    transform=None,
    vectorized: bool | None = None,
):
    """External-aggregation twin of
    :func:`repro.engine.pipeline.run_grouped_pipeline`: same signature,
    same ``(key_arrays, result_arrays, ngroups)`` contract, same
    canonical output order — plus spill accounting on
    ``context.last_stats``.  In the repro sum modes the returned bits
    are identical to the in-memory pipeline for every
    ``(memory_budget_bytes, spill_partitions, spill_merge_fanin,
    workers, morsel_size)`` combination.
    """
    from ..engine import pipeline as pipeline_mod
    from ..engine.operators import PartialGroupTable
    from ..engine.pipeline import PipelineStats, apply_where
    from ..engine.vectorized import (
        VectorizedGroupTable,
        plan_supports_vectorized,
    )

    wall_started = time.perf_counter()
    stats = PipelineStats(min(context.workers, max(len(morsels), 1)))
    stats.morsel_count = len(morsels)
    if vectorized is None:
        vectorized = bool(
            context.vectorized
            and plan_supports_vectorized(group_exprs, specs, where)
        )
    stats.vectorized = bool(vectorized)
    stats.external = True
    make_table = VectorizedGroupTable if stats.vectorized else PartialGroupTable

    npartitions = context.spill_partitions
    fanin = context.spill_merge_fanin
    budget = context.memory_budget_bytes
    per_worker_budget = (
        None if budget is None else max(1, budget // stats.workers)
    )
    stats.spill_partitions = npartitions
    selection_seconds = [0.0] * stats.workers
    aggregation_seconds = [0.0] * stats.workers

    spill_dir = tempfile.mkdtemp(prefix="repro-spill-")
    try:
        def work_one(worker_id: int, assigned: list[int]):
            agg = ExternalGroupAggregator(
                group_exprs, specs, make_table, npartitions,
                per_worker_budget, spill_dir, tag=f"w{worker_id:03d}",
            )
            for index in assigned:
                t0 = time.thread_time()
                batch = morsels[index]
                if transform is not None:
                    batch = transform(batch)
                filtered = apply_where(batch, where)
                t1 = time.thread_time()
                agg.update(filtered)
                t2 = time.thread_time()
                selection_seconds[worker_id] += t1 - t0
                aggregation_seconds[worker_id] += t2 - t1
            return agg

        aggregators = pipeline_mod._run_workers(
            morsels, context, stats, work_one
        )

        merge_started = time.thread_time()
        accounting = {"runs": 0, "bytes": 0, "passes": 0}
        root = make_table(group_exprs, specs)
        # Pre-partition state first (worker order): the unpartitioned
        # tables of workers that never overflowed, then any whole-table
        # runs spilled before promotion.
        for agg in aggregators:
            if agg._single is not None and agg._single.ngroups:
                root.merge(agg._single)
        for agg in aggregators:
            for path in agg.preruns:
                root.merge(_load_run(path, make_table, group_exprs, specs))
        for p in range(npartitions):
            acc = make_table(group_exprs, specs)
            for agg in aggregators:
                if agg.partitions[p].ngroups:
                    acc.merge(agg.partitions[p])
            runs = [path for agg in aggregators for path in agg.runs[p]]
            runs = _merge_runs_multipass(
                runs, fanin, make_table, group_exprs, specs,
                spill_dir, p, accounting,
            )
            for path in runs:
                acc.merge(_load_run(path, make_table, group_exprs, specs))
            if acc.ngroups:
                root.merge(acc)
        stats.merge_seconds = time.thread_time() - merge_started

        finalize_started = time.thread_time()
        key_arrays, results, ngroups = root.finalize()
        stats.finalize_seconds = time.thread_time() - finalize_started

        stats.spilled_runs = (
            sum(agg.runs_spilled for agg in aggregators) + accounting["runs"]
        )
        stats.spilled_bytes = (
            sum(agg.bytes_spilled for agg in aggregators) + accounting["bytes"]
        )
        stats.merge_passes = accounting["passes"]
        stats.peak_resident_bytes = max(
            (agg.peak_resident_bytes for agg in aggregators), default=0
        )
    finally:
        shutil.rmtree(spill_dir, ignore_errors=True)

    stats.wall_seconds = time.perf_counter() - wall_started
    context.last_stats = stats
    if timings is not None:
        timings.add("selection", sum(selection_seconds))
        timings.add(
            "aggregation",
            sum(aggregation_seconds) + stats.merge_seconds
            + stats.finalize_seconds,
        )
    return key_arrays, results, ngroups
