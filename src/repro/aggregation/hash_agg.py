"""HASHAGGREGATION (textbook operator, paper Section IV / [25]).

    "This algorithm looks up the aggregate of the corresponding group
    in a hash table using the key field of the input pair and adds the
    value field to that aggregate."

The operator is generic over the accumulator spec, so the same code
path runs the conventional-float baseline, DECIMAL, ``repro<T,L>``,
and buffered-``repro`` variants that Figure 4 compares.
"""

from __future__ import annotations

import numpy as np

from .accumulators import AggregatorSpec
from .hash_table import dense_group_ids
from .result import GroupByResult

__all__ = ["hash_aggregate", "group_ids"]


def group_ids(
    keys: np.ndarray, engine: str = "numpy", hashing: str = "identity"
) -> tuple[np.ndarray, np.ndarray]:
    """Probe phase: map keys to dense group ids.

    ``engine="hash"`` uses the faithful open-addressing table (group
    ids in first-arrival order, exactly like the C++ operator);
    ``engine="numpy"`` uses ``np.unique`` (group ids in key order, much
    faster in Python).  The aggregate attached to each *key* is
    identical either way — group numbering is internal.
    """
    keys = np.asarray(keys)
    if engine == "hash":
        return dense_group_ids(keys, hashing=hashing)
    if engine == "numpy":
        uniq, inverse = np.unique(keys, return_inverse=True)
        return inverse.astype(np.int64), uniq
    raise ValueError(f"unknown group-id engine {engine!r}")


def hash_aggregate(
    keys: np.ndarray,
    values: np.ndarray,
    spec: AggregatorSpec,
    engine: str = "numpy",
    hashing: str = "identity",
    elementwise: bool = False,
) -> GroupByResult:
    """Aggregate ``values`` by ``keys`` through one hash table.

    ``elementwise=True`` runs the faithful one-pair-at-a-time reference
    (used by the tests to pin the vectorised path bit-for-bit).
    """
    keys = np.asarray(keys)
    values = np.asarray(values)
    if keys.shape != values.shape or keys.ndim != 1:
        raise ValueError("keys and values must be equal-length 1-D arrays")
    gids, distinct = group_ids(keys, engine=engine, hashing=hashing)
    table = spec.make_table(len(distinct))
    if elementwise:
        spec.accumulate_elementwise(table, gids, values)
    else:
        spec.accumulate(table, gids, values)
    return GroupByResult(distinct, spec.finalize(table), spec.name)
