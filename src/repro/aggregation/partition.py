"""Radix partitioning (paper Section V-B, PARALLELPARTITION).

The input is split into ``F = fanout**depth`` partitions on the hash
value of the keys, so every record of a group lands in the same
partition and partitions can be aggregated independently.  The paper
uses the highly-tuned fan-out-256 radix partitioning of [9, 31, 33],
applied recursively ("we partition with F = f**d for f = 256 and
d = 0, 1, ...").

Two properties of the C++ routine matter for semantics and are kept:

* records *within* a partition preserve their arrival order (radix
  partitioning is stable) — this is what makes the conventional-float
  baseline deterministic for a fixed physical input order, yet
  different across reorderings;
* multi-threaded partitioning produces, per partition id, the logical
  concatenation of every thread's output in thread order (paper:
  "logically concatenating the corresponding output partitions
  produced by different threads").
"""

from __future__ import annotations

import numpy as np

from .hash_table import FIB_MULTIPLIER

__all__ = [
    "partition_ids",
    "radix_partition",
    "recursive_partition",
    "parallel_partition",
    "DEFAULT_FANOUT",
]

DEFAULT_FANOUT = 256


def partition_ids(
    keys: np.ndarray, fanout: int, level: int = 0, hashing: str = "identity"
) -> np.ndarray:
    """Partition id per record: one radix digit of the key hash.

    ``level`` selects the digit (level 0: lowest ``log2(fanout)`` bits,
    level 1 the next ones, ...), so recursive passes use independent
    bits, like an LSD radix partitioning.
    """
    if fanout & (fanout - 1) or fanout < 2:
        raise ValueError("fanout must be a power of two >= 2")
    bits = fanout.bit_length() - 1
    k = np.asarray(keys).astype(np.uint64, copy=False)
    if hashing == "multiplicative":
        with np.errstate(over="ignore"):
            k = k * FIB_MULTIPLIER
    elif hashing != "identity":
        raise ValueError(f"unknown hashing scheme {hashing!r}")
    shift = np.uint64(level * bits)
    return ((k >> shift) & np.uint64(fanout - 1)).astype(np.int64)


def radix_partition(
    keys: np.ndarray,
    values: np.ndarray,
    fanout: int = DEFAULT_FANOUT,
    level: int = 0,
    hashing: str = "identity",
) -> list[tuple[np.ndarray, np.ndarray]]:
    """One stable partitioning pass; returns ``fanout`` (keys, values) pairs.

    Implemented as a counting sort on the partition id (stable), which
    is exactly what the out-of-place radix partitioning of [33] does.
    """
    keys = np.asarray(keys)
    values = np.asarray(values)
    pids = partition_ids(keys, fanout, level, hashing)
    order = np.argsort(pids, kind="stable")
    sorted_pids = pids[order]
    sorted_keys = keys[order]
    sorted_values = values[order]
    counts = np.bincount(sorted_pids, minlength=fanout)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    return [
        (sorted_keys[bounds[p] : bounds[p + 1]], sorted_values[bounds[p] : bounds[p + 1]])
        for p in range(fanout)
    ]


def recursive_partition(
    keys: np.ndarray,
    values: np.ndarray,
    depth: int,
    fanout: int = DEFAULT_FANOUT,
    hashing: str = "identity",
) -> list[tuple[np.ndarray, np.ndarray]]:
    """``depth`` recursive passes; returns ``fanout**depth`` partitions.

    ``depth = 0`` is the paper's no-op PARALLELPARTITION that forwards
    its input as a single partition.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    if depth == 0:
        return [(np.asarray(keys), np.asarray(values))]
    parts = radix_partition(keys, values, fanout, level=0, hashing=hashing)
    for lvl in range(1, depth):
        nxt: list[tuple[np.ndarray, np.ndarray]] = []
        for pk, pv in parts:
            nxt.extend(radix_partition(pk, pv, fanout, level=lvl, hashing=hashing))
        parts = nxt
    return parts


def parallel_partition(
    keys: np.ndarray,
    values: np.ndarray,
    depth: int,
    fanout: int = DEFAULT_FANOUT,
    threads: int = 1,
    hashing: str = "identity",
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Multi-threaded partitioning semantics (deterministic simulation).

    The input is split into ``threads`` contiguous chunks (the paper
    permits "an arbitrary way"; contiguous chunks are the common
    choice); each chunk is partitioned independently and partition ``p``
    of the result is the concatenation of every chunk's partition ``p``
    in chunk order.
    """
    if threads < 1:
        raise ValueError("threads must be positive")
    keys = np.asarray(keys)
    values = np.asarray(values)
    if depth == 0:
        return [(keys, values)]
    if threads == 1:
        return recursive_partition(keys, values, depth, fanout, hashing)
    chunk_bounds = np.linspace(0, keys.size, threads + 1).astype(np.int64)
    per_thread = [
        recursive_partition(
            keys[chunk_bounds[t] : chunk_bounds[t + 1]],
            values[chunk_bounds[t] : chunk_bounds[t + 1]],
            depth,
            fanout,
            hashing,
        )
        for t in range(threads)
    ]
    nparts = fanout**depth
    merged: list[tuple[np.ndarray, np.ndarray]] = []
    for p in range(nparts):
        merged.append(
            (
                np.concatenate([per_thread[t][p][0] for t in range(threads)]),
                np.concatenate([per_thread[t][p][1] for t in range(threads)]),
            )
        )
    return merged
