"""Open-addressing hash table for GROUP BY (paper Section VI-A).

The paper's aggregation operators look up "the entry of the group in the
hash table" per input pair.  This module provides that table: linear
probing over a power-of-two slot array, with two hash functions:

* ``identity`` — the paper's IDENTITYHASHING: "not unrealistic in
  column stores, where dense ranges are common due to domain encoding";
* ``multiplicative`` — Fibonacci multiplicative hashing, the
  conventional choice (Cieslewicz & Ross), provided for comparison and
  for the cost model ("using a real hash function would make all our
  algorithms slower by the same constant").

The table maps a ``uint64`` key to a dense group index (0..ngroups-1)
assigned in first-arrival order, exactly like the C++ implementation a
hash aggregation would use.  Batch probing is vectorised: each round
resolves all keys whose slot is empty or already theirs and re-probes
the rest, so the semantics match the element-at-a-time loop bit for
bit while staying NumPy-fast.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HashTable", "dense_group_ids", "FIB_MULTIPLIER"]

#: 2**64 / phi, the classic Fibonacci hashing multiplier.
FIB_MULTIPLIER = np.uint64(11400714819323198485)

_EMPTY = np.int64(-1)
_FIB_INT = int(FIB_MULTIPLIER)


def _hash_keys(keys: np.ndarray, nbits: int, hashing: str) -> np.ndarray:
    """Map keys to initial slot indices in a ``2**nbits`` table."""
    k = keys.astype(np.uint64, copy=False)
    if hashing == "identity":
        return (k & np.uint64(2**nbits - 1)).astype(np.int64)
    if hashing == "multiplicative":
        with np.errstate(over="ignore"):
            h = k * FIB_MULTIPLIER
        return (h >> np.uint64(64 - nbits)).astype(np.int64)
    raise ValueError(f"unknown hashing scheme {hashing!r}")


def _hash_key_scalar(key: int, nbits: int, hashing: str) -> int:
    """Scalar twin of :func:`_hash_keys` (plain Python ints, fast path)."""
    if hashing == "identity":
        return key & (2**nbits - 1)
    return ((key * _FIB_INT) & (2**64 - 1)) >> (64 - nbits)


class HashTable:
    """Linear-probing key -> dense-group-id table."""

    def __init__(self, capacity_hint: int = 16, hashing: str = "identity"):
        if hashing not in ("identity", "multiplicative"):
            raise ValueError(f"unknown hashing scheme {hashing!r}")
        self.hashing = hashing
        nbits = 4
        while 2**nbits < 2 * capacity_hint:
            nbits += 1
        self._nbits = nbits
        self._slots_key = np.zeros(2**nbits, dtype=np.uint64)
        self._slots_gid = np.full(2**nbits, _EMPTY, dtype=np.int64)
        self._keys_in_order: list[int] = []

    def __len__(self) -> int:
        return len(self._keys_in_order)

    @property
    def capacity(self) -> int:
        return 2**self._nbits

    # -- scalar interface (reference semantics) -------------------------
    def get_or_insert(self, key: int) -> int:
        """Return the group id for ``key``, inserting it if new."""
        if len(self._keys_in_order) * 2 >= self.capacity:
            self._grow()
        mask = self.capacity - 1
        slot = _hash_key_scalar(key, self._nbits, self.hashing)
        slots_gid = self._slots_gid
        slots_key = self._slots_key
        while True:
            gid = slots_gid[slot]
            if gid == _EMPTY:
                new_gid = len(self._keys_in_order)
                slots_key[slot] = key
                slots_gid[slot] = new_gid
                self._keys_in_order.append(int(key))
                return new_gid
            if slots_key[slot] == key:
                return int(gid)
            slot = (slot + 1) & mask

    def lookup(self, key: int) -> int | None:
        """Return the group id for ``key`` or None if absent."""
        mask = self.capacity - 1
        slot = _hash_key_scalar(key, self._nbits, self.hashing)
        while True:
            gid = self._slots_gid[slot]
            if gid == _EMPTY:
                return None
            if self._slots_key[slot] == key:
                return int(gid)
            slot = (slot + 1) & mask

    # -- batch interface (vectorised, same semantics) --------------------
    def probe_batch(self, keys: np.ndarray) -> np.ndarray:
        """Group ids for a batch of keys, inserting unseen keys.

        Group ids are assigned in first-arrival order over the
        concatenation of all batches, which matches the scalar loop.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.empty(keys.size, dtype=np.int64)
        # Resolve existing keys in bulk, then feed the stragglers (keys
        # hitting an empty slot, i.e. unseen so far) through the scalar
        # path in batch order, which preserves first-arrival gids and
        # handles growth.  A second bulk round is unnecessary: the
        # scalar path resolves duplicates among the stragglers too.
        slots = _hash_keys(keys, self._nbits, self.hashing)
        mask = self.capacity - 1
        hit = np.zeros(keys.size, dtype=bool)
        miss_empty = np.zeros(keys.size, dtype=bool)
        gids = np.full(keys.size, _EMPTY, dtype=np.int64)
        for _ in range(self.capacity + 1):
            gids = self._slots_gid[slots]
            slot_keys = self._slots_key[slots]
            hit = (gids != _EMPTY) & (slot_keys == keys)
            miss_empty = gids == _EMPTY
            probe_on = ~hit & ~miss_empty
            if not probe_on.any():
                break
            slots[probe_on] = (slots[probe_on] + 1) & mask
        out[hit] = gids[hit]
        pending = np.flatnonzero(miss_empty)
        for idx in pending:
            out[idx] = self.get_or_insert(int(keys[idx]))
        return out

    # -- misc -------------------------------------------------------------
    def keys_in_order(self) -> np.ndarray:
        """Distinct keys in first-arrival (insertion) order."""
        return np.asarray(self._keys_in_order, dtype=np.uint64)

    def _grow(self) -> None:
        old_keys = self.keys_in_order()
        self._nbits += 1
        self._slots_key = np.zeros(2**self._nbits, dtype=np.uint64)
        self._slots_gid = np.full(2**self._nbits, _EMPTY, dtype=np.int64)
        order = self._keys_in_order
        self._keys_in_order = []
        for key in order:
            self.get_or_insert(key)
        assert self._keys_in_order == order

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HashTable({len(self)} groups, capacity={self.capacity}, "
            f"{self.hashing})"
        )


def dense_group_ids(
    keys: np.ndarray, hashing: str = "identity"
) -> tuple[np.ndarray, np.ndarray]:
    """Map a key column to dense group ids (first-arrival order).

    Returns ``(group_ids, distinct_keys)`` where
    ``distinct_keys[group_ids] == keys``.  This is the probe phase of
    hash aggregation, factored out so every algorithm shares it.
    """
    keys = np.asarray(keys)
    table = HashTable(capacity_hint=max(16, keys.size // 4), hashing=hashing)
    gids = table.probe_batch(keys.astype(np.uint64, copy=False))
    return gids, table.keys_in_order()
