"""SORTAGGREGATION (paper Sections II-C and VI-A).

The only way to make conventional floating-point aggregation
reproducible without new number formats is to impose a *total* order
on the operations: sort the input, then reduce each run sequentially.
The paper measures this baseline at over 60 ns per element — 3-20x
slower than PARTITIONANDAGGREGATE — which is the motivation for the
numeric approach (Table IV's "double (sorted)" column).

Note the subtlety: sorting by key alone is not enough, because a stable
key sort preserves the (physical) arrival order of equal keys.  The
values themselves must join the sort key; we order by value bit
patterns, which is total even for NaNs and signed zeros.
"""

from __future__ import annotations

import numpy as np

from .accumulators import AggregatorSpec, ConventionalFloatSpec
from .result import GroupByResult

__all__ = ["sort_aggregate"]


def _value_order_bits(values: np.ndarray) -> np.ndarray:
    """A total order on float values via their bit patterns."""
    if values.dtype == np.float32:
        return values.view(np.uint32)
    if values.dtype == np.float64:
        return values.view(np.uint64)
    return values  # integers order naturally


def sort_aggregate(
    keys: np.ndarray,
    values: np.ndarray,
    spec: AggregatorSpec | None = None,
    total_order: bool = True,
) -> GroupByResult:
    """Sort-based GROUP BY SUM.

    ``total_order=True`` (default) sorts by (key, value-bits) and is
    reproducible for *any* accumulator, including conventional floats.
    ``total_order=False`` sorts by key only (stable), reproducing the
    behaviour of engines that sort on the grouping column alone: still
    order-dependent for floats.
    """
    keys = np.asarray(keys)
    values = np.asarray(values)
    if keys.shape != values.shape or keys.ndim != 1:
        raise ValueError("keys and values must be equal-length 1-D arrays")
    if spec is None:
        spec = ConventionalFloatSpec(
            values.dtype if values.dtype in (np.float32, np.float64) else np.float64
        )
    if total_order:
        order = np.lexsort((_value_order_bits(values), keys))
    else:
        order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_values = values[order]
    if sorted_keys.size == 0:
        return GroupByResult(sorted_keys, np.asarray([]), spec.name)
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
    )
    distinct = sorted_keys[boundaries]
    run_ids = np.cumsum(
        np.concatenate(([0], (sorted_keys[1:] != sorted_keys[:-1]).astype(np.int64)))
    )
    table = spec.make_table(len(distinct))
    spec.accumulate(table, run_ids, sorted_values)
    return GroupByResult(distinct, spec.finalize(table), spec.name)
