"""Public GROUP BY SUM facade.

One call, all the paper's machinery::

    result = group_sum(keys, values)                      # reproducible
    result = group_sum(keys, values, reproducible=False)  # IEEE baseline
    result = group_sum(keys, values, method="partition", threads=8,
                       dtype="float", levels=3, buffer_size=512)

The default configuration is the paper's recommendation: partition-and-
aggregate with offline-tuned depth, summation buffers sized by
Equation 4, and ``repro<double,2>`` accumulators (accuracy comparable
to IEEE doubles, bit-reproducible under any physical reordering).
"""

from __future__ import annotations

import numpy as np

from ..core.tuning import (
    HASWELL_CACHE,
    PARTITION_FANOUT,
    choose_partition_depth,
    optimal_buffer_size,
)
from ..fp.decimal_fixed import DecimalType
from .accumulators import AggregatorSpec, spec_from_options
from .hash_agg import hash_aggregate
from .partition_agg import partition_and_aggregate
from .result import GroupByResult
from .shared_agg import shared_aggregate
from .sort_agg import sort_aggregate

__all__ = ["group_sum"]

_METHODS = ("auto", "hash", "partition", "sort", "shared")


def group_sum(
    keys,
    values,
    method: str = "auto",
    dtype: str = "double",
    reproducible: bool = True,
    levels: int = 2,
    buffered: bool = True,
    buffer_size: int | None = None,
    decimal: DecimalType | None = None,
    depth: int | None = None,
    fanout: int = PARTITION_FANOUT,
    threads: int = 1,
    hashing: str = "identity",
    engine: str = "numpy",
    seed: int | None = 0,
    spec: AggregatorSpec | None = None,
    sort_output: bool = True,
) -> GroupByResult:
    """GROUP BY SUM over ``(keys, values)`` pairs.

    Parameters
    ----------
    method:
        ``"hash"`` (plain hash aggregation), ``"partition"``
        (Algorithm 4), ``"sort"`` (sort-based baseline), ``"shared"``
        (shared-table with simulated scheduling), or ``"auto"``
        (partition with offline-tuned depth — the paper's default).
    dtype / levels:
        Scalar type (``"float"``/``"double"``) and accuracy levels
        ``L`` of the reproducible accumulator.
    reproducible:
        ``False`` selects the conventional IEEE baseline.
    buffered / buffer_size:
        Summation buffers (Section V); ``buffer_size=None`` applies
        Equation 4 against the number of groups.
    decimal:
        A :class:`~repro.fp.decimal_fixed.DecimalType` for the
        fixed-point comparison baseline (overrides dtype options).
    depth / fanout / threads:
        Partitioning depth (None: Figure 9 rule), radix fan-out, and
        simulated thread count.
    seed:
        Scheduling seed for ``method="shared"``.
    sort_output:
        Return groups in ascending key order (canonical).
    """
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}")
    keys = np.asarray(keys)
    values = np.asarray(values)
    if keys.ndim != 1 or values.ndim != 1:
        raise ValueError(
            "group_sum expects 1-D keys and values, got shapes "
            f"{keys.shape} and {values.shape}"
        )
    if keys.shape != values.shape:
        raise ValueError(
            f"keys and values must have the same length, got {keys.size} "
            f"keys and {values.size} values"
        )
    if keys.size == 0:
        raise ValueError(
            "group_sum requires at least one (key, value) pair; for "
            "incrementally filled (possibly empty) aggregations use "
            "repro.aggregation.StreamingGroupSum"
        )

    if spec is None:
        if buffer_size is None and buffered and reproducible and decimal is None:
            ngroups = max(1, np.unique(keys).size)
            eff_fanout = fanout ** (
                depth
                if depth is not None
                else choose_partition_depth(ngroups, fanout)
            )
            itemsize = 4 if str(dtype) in ("float", "binary32", "float32") else 8
            buffer_size = optimal_buffer_size(
                ngroups, itemsize, eff_fanout, HASWELL_CACHE
            )
        spec = spec_from_options(
            dtype=dtype,
            reproducible=reproducible,
            levels=levels,
            buffered=buffered,
            buffer_size=buffer_size,
            decimal=decimal,
        )

    if method in ("auto", "partition"):
        result = partition_and_aggregate(
            keys, values, spec, depth=depth, fanout=fanout,
            threads=threads, hashing=hashing, engine=engine,
        )
    elif method == "hash":
        result = hash_aggregate(keys, values, spec, engine=engine, hashing=hashing)
    elif method == "sort":
        result = sort_aggregate(keys, values, spec)
    else:  # shared
        result = shared_aggregate(
            keys, values, spec, threads=max(threads, 2), seed=seed, engine=engine
        )
    return result.sorted_by_key() if sort_output else result
