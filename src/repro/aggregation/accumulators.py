"""Pluggable per-group accumulator specifications.

Every aggregation algorithm in this package (hash, partition+aggregate,
sort, shared) is generic over *how* a group's values are summed.  The
paper compares exactly these choices:

* ``ConventionalFloatSpec`` — built-in float/double accumulators, one
  IEEE add per input value in arrival order.  Fast, order-dependent,
  non-reproducible (the baseline of every figure).
* ``DecimalSpec`` — DECIMAL(p) fixed-point accumulators (exact integer
  adds; reproducible but inflexible, Figures 7 and 10's comparison).
* ``ReproSpec`` — the ``repro<ScalarT,L>`` type of Section IV: one
  multi-level extraction per input value (bit-reproducible, 4-12x
  slower in the paper's Figure 4).
* ``BufferedReproSpec`` — Section V's summation buffers in front of the
  reproducible type: values are buffered per group and flushed through
  the vectorised summation (bit-identical results, amortised cost).

Each spec offers a vectorised ``accumulate`` (the production path) and
an ``accumulate_elementwise`` reference that processes one pair at a
time exactly like the textbook operator; for the reproducible specs the
two are bit-identical by construction, and the tests assert it.
"""

from __future__ import annotations

import numpy as np

from ..core.buffer import DEFAULT_BUFFER_SIZE, BufferedReproFloat
from ..core.params import RsumParams
from ..core.repro_type import ReproFloat, repro_spec_name
from ..core.rsum import params_from_spec
from ..fp.decimal_fixed import DecimalType
from .grouped import GroupedSummation, add_sorted_runs_multi

__all__ = [
    "AggregatorSpec",
    "ConventionalFloatSpec",
    "DecimalSpec",
    "ReproSpec",
    "BufferedReproSpec",
    "spec_from_options",
]


class AggregatorSpec:
    """Interface shared by all accumulator specifications."""

    #: human-readable name used in benchmark tables
    name: str
    #: bytes per intermediate aggregate (cache-footprint models)
    itemsize: int
    #: True if results are bit-identical for any input order
    reproducible: bool

    def make_table(self, ngroups: int):
        raise NotImplementedError

    def accumulate(self, table, group_ids: np.ndarray, values: np.ndarray):
        raise NotImplementedError

    def accumulate_elementwise(self, table, group_ids, values):
        raise NotImplementedError

    def merge(self, table, other_table, mapping: np.ndarray):
        """Fold ``other_table`` into ``table``; ``mapping`` maps gids."""
        raise NotImplementedError

    def finalize(self, table) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name})"


class ConventionalFloatSpec(AggregatorSpec):
    """Order-dependent IEEE accumulation (the non-reproducible baseline)."""

    reproducible = False

    def __init__(self, dtype=np.float64):
        self.dtype = np.dtype(dtype)
        self.name = {"float32": "float", "float64": "double"}.get(
            self.dtype.name, self.dtype.name
        )
        self.itemsize = self.dtype.itemsize

    def make_table(self, ngroups: int) -> np.ndarray:
        return np.zeros(ngroups, dtype=self.dtype)

    def accumulate(self, table, group_ids, values):
        # ufunc.at is unbuffered: repeated indices accumulate one
        # element at a time in array order, matching the scalar loop.
        np.add.at(table, group_ids, values.astype(self.dtype, copy=False))

    def accumulate_elementwise(self, table, group_ids, values):
        dt = self.dtype.type
        for gid, val in zip(group_ids, values):
            table[gid] = dt(table[gid] + dt(val))

    def merge(self, table, other_table, mapping):
        np.add.at(table, mapping, other_table)

    def finalize(self, table):
        return table.copy()


class DecimalSpec(AggregatorSpec):
    """Exact fixed-point accumulation (reproducible, fixed scale)."""

    reproducible = True

    def __init__(self, decimal_type: DecimalType):
        self.decimal_type = decimal_type
        self.name = decimal_type.name
        self.itemsize = decimal_type.itemsize

    def make_table(self, ngroups: int) -> np.ndarray:
        # Unscaled integers; object dtype for the 128-bit lane keeps the
        # arithmetic exact (our stand-in for __int128).
        if self.decimal_type.storage_bits <= 64:
            return np.zeros(ngroups, dtype=np.int64)
        return np.array([0] * ngroups, dtype=object)

    def _to_unscaled(self, values) -> np.ndarray:
        if values.dtype.kind in "iu":
            return values.astype(np.int64, copy=False)
        return np.asarray(
            [self.decimal_type.unscaled_from_real(float(v)) for v in values],
            dtype=np.int64,
        )

    def accumulate(self, table, group_ids, values):
        unscaled = self._to_unscaled(np.asarray(values))
        if table.dtype == object:
            for gid, v in zip(group_ids, unscaled):
                table[gid] += int(v)
        else:
            np.add.at(table, group_ids, unscaled)

    def accumulate_elementwise(self, table, group_ids, values):
        unscaled = self._to_unscaled(np.asarray(values))
        for gid, v in zip(group_ids, unscaled):
            table[gid] += int(v)

    def merge(self, table, other_table, mapping):
        if table.dtype == object:
            for tgt, v in zip(mapping, other_table):
                table[tgt] += int(v)
        else:
            np.add.at(table, mapping, other_table)

    def finalize(self, table):
        scale = 10.0**-self.decimal_type.scale
        for total in table:
            self.decimal_type.check(int(total))
        return np.asarray([float(int(v)) * scale for v in table])

    def finalize_unscaled(self, table) -> list:
        """Exact unscaled totals (overflow-checked)."""
        return [self.decimal_type.check(int(v)) for v in table]


class ReproSpec(AggregatorSpec):
    """``repro<ScalarT,L>`` accumulators (Section IV)."""

    reproducible = True

    def __init__(self, dtype="double", levels: int = 2, w=None,
                 params: RsumParams | None = None):
        self.params = params if params is not None else params_from_spec(dtype, levels, w)
        self.name = repro_spec_name(self.params)
        # S[L] + C[L] at 8 bytes each: the paper's Figure 5 layout
        # without the buffer.
        self.itemsize = 16 * self.params.levels

    def make_table(self, ngroups: int) -> GroupedSummation:
        return GroupedSummation(self.params, ngroups)

    def accumulate(self, table, group_ids, values):
        gids = np.asarray(group_ids, dtype=np.int64)
        if gids.size > 1 and bool((gids[1:] >= gids[:-1]).all()):
            # Sorted runs (sort/partition-based GROUP BY feeds these):
            # the segmented kernel is faster and — the repro states
            # being exact under any ordering — bit-identical.
            table.add_sorted_runs(gids, values)
        else:
            table.add_pairs(group_ids, values)

    def accumulate_multi(self, tables, group_ids, values):
        """Feed several same-parameter tables one sorted morsel at once
        (``values`` is ``(len(tables), n)``) — the fused engine kernels'
        batched ladder walk, bit-identical to per-table
        :meth:`accumulate` over sorted runs."""
        add_sorted_runs_multi(tables, group_ids, values)

    def accumulate_elementwise(self, table, group_ids, values):
        # One ReproFloat += per pair, exactly like the unmodified
        # HASHAGGREGATION of Figure 4; folded back into the grouped
        # state afterwards (bit-exact merge).
        scratch: dict[int, ReproFloat] = {}
        for gid, val in zip(group_ids, values):
            acc = scratch.get(int(gid))
            if acc is None:
                acc = ReproFloat(params=self.params)
                scratch[int(gid)] = acc
            acc += val
        for gid, acc in scratch.items():
            own = table.to_state(gid)
            own.merge(acc.state)
            table.e0[gid] = own.e0 if own.e0 is not None else table.e0[gid]
            for level in range(self.params.levels):
                table.s[level][gid] = own.s[level]
                table.c[level][gid] = own.c[level]
            table.nan_cnt[gid] = own.nan_count
            table.pos_cnt[gid] = own.posinf_count
            table.neg_cnt[gid] = own.neginf_count

    def merge(self, table, other_table, mapping):
        table.merge(other_table, mapping)

    def finalize(self, table):
        return table.finalize()


class BufferedReproSpec(ReproSpec):
    """Summation buffers in front of ``repro<ScalarT,L>`` (Section V).

    The vectorised path produces bit-identical results to the plain
    reproducible spec (flush points cannot change RSUM's bits), so it
    shares the grouped kernel; what differs is the *element-wise*
    reference (real per-group buffers, as a C++ engine would run) and
    the cache-footprint accounting used by Equation 4 and the cost
    model.
    """

    def __init__(self, dtype="double", levels: int = 2,
                 buffer_size: int = DEFAULT_BUFFER_SIZE, w=None,
                 params: RsumParams | None = None):
        super().__init__(dtype, levels, w, params)
        if buffer_size < 1:
            raise ValueError("buffer size must be at least 1")
        self.buffer_size = buffer_size
        self.name = f"{repro_spec_name(self.params)}+buf{buffer_size}"
        scalar_size = self.params.fmt.itemsize
        # Figure 5 layout: S[L] | C[L] | next | buffer[bsz].
        self.itemsize = 16 * self.params.levels + 8 + scalar_size * buffer_size

    def accumulate_elementwise(self, table, group_ids, values):
        buffers: dict[int, BufferedReproFloat] = {}
        for gid, val in zip(group_ids, values):
            buf = buffers.get(int(gid))
            if buf is None:
                buf = BufferedReproFloat(
                    params=self.params, buffer_size=self.buffer_size
                )
                buffers[int(gid)] = buf
            buf.append(val)
        for gid, buf in buffers.items():
            acc = buf.to_repro()
            own = table.to_state(gid)
            own.merge(acc.state)
            table.e0[gid] = own.e0 if own.e0 is not None else table.e0[gid]
            for level in range(self.params.levels):
                table.s[level][gid] = own.s[level]
                table.c[level][gid] = own.c[level]
            table.nan_cnt[gid] = own.nan_count
            table.pos_cnt[gid] = own.posinf_count
            table.neg_cnt[gid] = own.neginf_count


def spec_from_options(
    dtype="double",
    reproducible: bool = True,
    levels: int = 2,
    buffered: bool = True,
    buffer_size: int | None = None,
    decimal: DecimalType | None = None,
    w=None,
) -> AggregatorSpec:
    """Resolve user-facing options into an accumulator spec."""
    if decimal is not None:
        return DecimalSpec(decimal)
    if not reproducible:
        np_dtype = np.float32 if str(dtype) in ("float", "binary32", "float32") else np.float64
        return ConventionalFloatSpec(np_dtype)
    if buffered:
        return BufferedReproSpec(
            dtype, levels, buffer_size or DEFAULT_BUFFER_SIZE, w
        )
    return ReproSpec(dtype, levels, w)
