"""Result container for GROUP BY aggregations."""

from __future__ import annotations

import numpy as np

from ..fp.ieee import float32_to_bits, float_to_bits

__all__ = ["GroupByResult"]


class GroupByResult:
    """The ``(key, aggregate)`` pairs produced by a GROUP BY SUM.

    ``keys[i]`` is the i-th distinct key, ``sums[i]`` its aggregate.
    Group order depends on the algorithm (insertion order for hash
    aggregation, partition order for partition-and-aggregate); use
    :meth:`sorted_by_key` before comparing results across algorithms.
    """

    __slots__ = ("keys", "sums", "spec_name")

    def __init__(self, keys: np.ndarray, sums: np.ndarray, spec_name: str = ""):
        self.keys = np.asarray(keys)
        self.sums = np.asarray(sums)
        if self.keys.shape != self.sums.shape:
            raise ValueError("keys and sums must have the same length")
        self.spec_name = spec_name

    def __len__(self) -> int:
        return len(self.keys)

    def sorted_by_key(self) -> "GroupByResult":
        """Canonical ordering for cross-algorithm comparison."""
        order = np.argsort(self.keys, kind="stable")
        return GroupByResult(self.keys[order], self.sums[order], self.spec_name)

    def as_dict(self) -> dict:
        return {int(k): v for k, v in zip(self.keys, self.sums)}

    def bits(self) -> list[int]:
        """Bit patterns of the aggregates, in key order.

        This is the identity under which the paper defines
        reproducibility: two executions agree iff these lists agree.
        """
        ordered = self.sorted_by_key()
        if ordered.sums.dtype == np.float32:
            return [float32_to_bits(v) for v in ordered.sums]
        if ordered.sums.dtype == np.float64:
            return [float_to_bits(float(v)) for v in ordered.sums]
        return [int(v) for v in ordered.sums]  # exact integer aggregates

    def bit_equal(self, other: "GroupByResult") -> bool:
        a, b = self.sorted_by_key(), other.sorted_by_key()
        return (
            len(a) == len(b)
            and bool(np.all(a.keys == b.keys))
            and a.bits() == b.bits()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GroupByResult({len(self)} groups, spec={self.spec_name or '?'})"
        )
