"""Retractable (invertible) reproducible grouped summation.

The paper's exact-merge property makes partial aggregate states
*invertible*: because contributions are accumulated as exact integer
quanta on a fixed extractor grid, a value's contribution can be
subtracted again without any rounding residue.  That is what enables
incrementally-maintained materialized aggregate views — merge the
partial states of inserted rows, *retract* those of deleted rows, and
the refreshed view is byte-identical to recomputing it from scratch.

One wrinkle stands between the L-level :class:`GroupedSummation` state
and exact retraction: the engine's query-time state keeps only the top
``L`` grid levels relative to the group's running ``max |value|``, and
a ladder promotion *discards* the levels that fall below the horizon.
Retracting the maximum would require un-promoting the ladder and
recovering those discarded bins — information the truncated state no
longer has.

This module therefore maintains the **full-grid** form of the same
state:

* one integer bin ``(s, c)`` per extractor-grid slot that has ever
  received a quantum (sparse: real data touches a handful of slots);
* a **top-slot refcount histogram**: for every live value, one count at
  the grid slot its magnitude pins the ladder to (the ``needed_e0`` of
  Algorithm 2's no-demotion condition).

Both structures are plain integer vectors, so the state is an abelian
group: ``insert`` adds, ``retract`` subtracts, and any interleaving of
the two over the same multiset of values lands on the same bytes.

:meth:`RetractableGroupedSummation.render` converts the full-grid state
back into the engine's truncated L-level :class:`GroupedSummation`:

* the group ladder top ``e0`` is the highest grid slot with a positive
  refcount — exactly the from-scratch running-max ladder, because
  ``needed_e0`` is per-value and order-independent (and, unlike the
  bins themselves, the refcounts cannot cancel);
* the L levels below ``e0`` copy their bins verbatim (bins are kept in
  the same canonical ``s in [0, 2**(m-2))`` split, so the copied pair
  matches the carry-propagated query-time state bit for bit);
* everything below the horizon is dropped — the same truncation a
  ladder promotion performs.

The test suite asserts the resulting state is **byte-identical** to
feeding the surviving multiset through :class:`GroupedSummation` from
scratch, for any insert/retract interleaving, including NaN, ±inf,
``-0.0`` and subnormal inputs.
"""

from __future__ import annotations

import numpy as np

from ..core.params import RsumParams
from ..core.state import LadderOverflowError
from .grouped import GroupedSummation, _EMPTY_E0

__all__ = ["RetractableGroupedSummation"]

#: Chunk cap keeping int64 quantum sums exact between canonicalisation
#: sweeps (same bound as :data:`repro.aggregation.grouped._CHUNK`).
_CHUNK = 1 << 22


class RetractableGroupedSummation:
    """Full-grid reproducible sums for ``ngroups`` groups, supporting
    exact retraction."""

    def __init__(self, params: RsumParams, ngroups: int):
        if ngroups < 0:
            raise ValueError("ngroups must be non-negative")
        self.params = params
        self.ngroups = ngroups
        fmt = params.fmt
        self._m = fmt.mantissa_bits
        self._w = params.w
        self._L = params.levels
        self._emin_grid = -(-fmt.min_exponent // self._w) * self._w
        self._emax_grid = (fmt.max_exponent // self._w) * self._w
        self._dtype = fmt.dtype if fmt.dtype is not None else np.dtype(np.float64)
        #: grid slot exponent -> [s, c] canonical int64 bin arrays
        self.bins: dict[int, list[np.ndarray]] = {}
        #: grid slot exponent -> per-group live-value refcounts
        self.top_counts: dict[int, np.ndarray] = {}
        self.nan_cnt = np.zeros(ngroups, dtype=np.int64)
        self.pos_cnt = np.zeros(ngroups, dtype=np.int64)
        self.neg_cnt = np.zeros(ngroups, dtype=np.int64)

    # ------------------------------------------------------------------
    # Slot bookkeeping
    # ------------------------------------------------------------------
    def _bin(self, slot: int) -> list[np.ndarray]:
        entry = self.bins.get(slot)
        if entry is None:
            entry = [
                np.zeros(self.ngroups, dtype=np.int64),
                np.zeros(self.ngroups, dtype=np.int64),
            ]
            self.bins[slot] = entry
        return entry

    def _top(self, slot: int) -> np.ndarray:
        arr = self.top_counts.get(slot)
        if arr is None:
            arr = np.zeros(self.ngroups, dtype=np.int64)
            self.top_counts[slot] = arr
        return arr

    def resize(self, ngroups: int) -> None:
        """Grow the table (new groups start empty; existing bits keep)."""
        if ngroups < self.ngroups:
            raise ValueError("cannot shrink a retractable summation")
        if ngroups == self.ngroups:
            return
        extra = ngroups - self.ngroups

        def grown(arr: np.ndarray) -> np.ndarray:
            return np.concatenate([arr, np.zeros(extra, dtype=np.int64)])

        for entry in self.bins.values():
            entry[0] = grown(entry[0])
            entry[1] = grown(entry[1])
        for slot in list(self.top_counts):
            self.top_counts[slot] = grown(self.top_counts[slot])
        self.nan_cnt = grown(self.nan_cnt)
        self.pos_cnt = grown(self.pos_cnt)
        self.neg_cnt = grown(self.neg_cnt)
        self.ngroups = ngroups

    # ------------------------------------------------------------------
    # Accumulation / retraction
    # ------------------------------------------------------------------
    def add_pairs(self, group_ids: np.ndarray, values: np.ndarray) -> None:
        """Insert a batch of ``(group_id, value)`` pairs."""
        self._apply(group_ids, values, +1)

    def retract_pairs(self, group_ids: np.ndarray, values: np.ndarray) -> None:
        """Remove one previously-inserted occurrence of each pair.

        Exact: after retracting a sub-multiset, the state is bit-equal
        to one that never saw those pairs.
        """
        self._apply(group_ids, values, -1)

    def _apply(self, group_ids, values, sign: int) -> None:
        gids = np.asarray(group_ids, dtype=np.int64)
        vals = np.asarray(values, dtype=self._dtype)
        if gids.shape != vals.shape or gids.ndim != 1:
            raise ValueError("group_ids and values must be equal-length 1-D")
        if gids.size and (gids.min() < 0 or gids.max() >= self.ngroups):
            raise IndexError("group id out of range")
        for start in range(0, gids.size, _CHUNK):
            self._apply_chunk(
                gids[start : start + _CHUNK],
                vals[start : start + _CHUNK],
                sign,
            )

    def _apply_chunk(self, gids, vals, sign: int) -> None:
        finite = np.isfinite(vals)
        if not finite.all():
            np.add.at(self.nan_cnt, gids[np.isnan(vals)], sign)
            np.add.at(self.pos_cnt, gids[vals == np.inf], sign)
            np.add.at(self.neg_cnt, gids[vals == -np.inf], sign)
            gids = gids[finite]
            vals = vals[finite]
        nonzero = vals != 0
        if not nonzero.all():
            gids = gids[nonzero]
            vals = vals[nonzero]
        if gids.size == 0:
            return

        # Per-value ladder pin: the slot Algorithm 2's no-demotion
        # condition demands (the running-max e0 is the max of these).
        _, exps = np.frexp(np.abs(vals))
        eb = exps.astype(np.int64) - 1
        raw = eb + self._m - self._w + 2
        needed = -((-raw) // self._w) * self._w
        if np.any(needed > self._emax_grid):
            raise LadderOverflowError(
                "input magnitude exceeds the extractor ladder range"
            )
        np.maximum(needed, self._emin_grid, out=needed)
        for slot in np.unique(needed).tolist():
            mask = needed == slot
            np.add.at(self._top(int(slot)), gids[mask], sign)

        # Grid-aligned anchor extraction over *all* slots from the
        # batch's top slot downwards.  Extraction at a slot above a
        # value's own pin yields an exact 0 (the anchor's half-ulp
        # exceeds the value), so one shared slot walk is bit-equal to
        # per-value walks; the remainder of a value dies within
        # ceil(m/w)+1 slots of its pin, so the walk is short.
        quantum_bits = self._m - 2
        r = vals
        slot = int(needed.max())
        while slot >= self._emin_grid and np.any(r != 0):
            anchor = np.ldexp(self._dtype.type(1.5), slot)
            q = (r + anchor) - anchor
            r = r - q
            k = np.ldexp(q, self._m - slot).astype(np.int64)
            if np.any(k):
                entry = self._bin(slot)
                np.add.at(entry[0], gids, sign * k)
                # Canonicalise: keep s in [0, 2**(m-2)), carries in c.
                # A pure function of the bin total, so insert/retract
                # interleavings cannot skew the split.
                s = entry[0]
                d = s >> quantum_bits
                np.subtract(s, d << quantum_bits, out=s)
                entry[1] += d
            slot -= self._w

    def merge(self, other: "RetractableGroupedSummation",
              mapping: np.ndarray | None = None) -> None:
        """Fold ``other`` in (exact; ``mapping`` as in
        :meth:`GroupedSummation.merge`)."""
        if other.params != self.params:
            raise ValueError("cannot merge with different parameters")
        if mapping is None:
            if other.ngroups != self.ngroups:
                raise ValueError("group counts differ and no mapping given")
            mapping = np.arange(self.ngroups, dtype=np.int64)
        else:
            mapping = np.asarray(mapping, dtype=np.int64)
            if mapping.size != other.ngroups:
                raise ValueError("mapping must cover all source groups")
        np.add.at(self.nan_cnt, mapping, other.nan_cnt)
        np.add.at(self.pos_cnt, mapping, other.pos_cnt)
        np.add.at(self.neg_cnt, mapping, other.neg_cnt)
        for slot, counts in other.top_counts.items():
            np.add.at(self._top(slot), mapping, counts)
        quantum_bits = self._m - 2
        for slot, (src_s, src_c) in other.bins.items():
            entry = self._bin(slot)
            np.add.at(entry[0], mapping, src_s)
            np.add.at(entry[1], mapping, src_c)
            s = entry[0]
            d = s >> quantum_bits
            np.subtract(s, d << quantum_bits, out=s)
            entry[1] += d

    # ------------------------------------------------------------------
    # Rendering back to the engine's truncated state
    # ------------------------------------------------------------------
    def render(self) -> GroupedSummation:
        """The L-level :class:`GroupedSummation` a from-scratch run over
        the live multiset would hold, bit for bit."""
        out = GroupedSummation(self.params, self.ngroups)
        e0 = np.full(self.ngroups, _EMPTY_E0, dtype=np.int64)
        for slot in sorted(self.top_counts, reverse=True):
            counts = self.top_counts[slot]
            np.maximum(e0, np.where(counts > 0, slot, _EMPTY_E0), out=e0)
        out.e0 = e0
        valid = e0 > _EMPTY_E0
        for slot, (s_arr, c_arr) in self.bins.items():
            level = (e0 - slot) // self._w
            for lvl in range(self._L):
                mask = valid & (level == lvl)
                if mask.any():
                    out.s[lvl][mask] = s_arr[mask]
                    out.c[lvl][mask] = c_arr[mask]
        out.nan_cnt = self.nan_cnt.copy()
        out.pos_cnt = self.pos_cnt.copy()
        out.neg_cnt = self.neg_cnt.copy()
        return out

    def finalize(self) -> np.ndarray:
        """Per-group sums, bit-equal to the from-scratch query path."""
        return self.render().finalize()

    def nbytes(self) -> int:
        per_slot = sum(
            s.nbytes + c.nbytes for s, c in self.bins.values()
        ) + sum(arr.nbytes for arr in self.top_counts.values())
        return (
            per_slot + self.nan_cnt.nbytes + self.pos_cnt.nbytes
            + self.neg_cnt.nbytes
        )

    def state_identity(self) -> tuple:
        """Canonical full-state identity (drives the round-trip
        property tests: ``insert then retract`` must restore this)."""
        live_bins = tuple(
            (slot, tuple(entry[0].tolist()), tuple(entry[1].tolist()))
            for slot, entry in sorted(self.bins.items())
            if np.any(entry[0]) or np.any(entry[1])
        )
        live_tops = tuple(
            (slot, tuple(arr.tolist()))
            for slot, arr in sorted(self.top_counts.items())
            if np.any(arr)
        )
        return (
            live_bins,
            live_tops,
            tuple(self.nan_cnt.tolist()),
            tuple(self.pos_cnt.tolist()),
            tuple(self.neg_cnt.tolist()),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RetractableGroupedSummation({self.ngroups} groups, "
            f"{len(self.bins)} slots, {self.params.fmt.name})"
        )
