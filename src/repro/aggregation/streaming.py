"""Streaming / bounded-memory reproducible GROUP BY SUM.

Engines rarely see the whole input at once: scans deliver batches, and
aggregation state must be able to grow (or be merged from spilled
runs).  :class:`StreamingGroupSum` is the incremental counterpart of
:func:`~repro.aggregation.api.group_sum`:

* feed it ``(keys, values)`` batches of any size and order;
* merge two streams (e.g. per-worker instances, or spilled partials);
* finalise to a :class:`~repro.aggregation.result.GroupByResult`.

RSUM's batching independence means *how* the stream was cut can never
change the result bits — asserted by the tests against the one-shot
implementation.
"""

from __future__ import annotations

import numpy as np

from ..core.params import DEFAULT_LEVELS
from ..core.rsum import params_from_spec
from .grouped import GroupedSummation
from .result import GroupByResult

__all__ = ["StreamingGroupSum"]


class StreamingGroupSum:
    """Incremental bit-reproducible GROUP BY SUM."""

    def __init__(self, dtype="double", levels: int = DEFAULT_LEVELS, w=None):
        self.params = params_from_spec(dtype, levels, w)
        self._gids: dict[int, int] = {}
        self._keys: list[int] = []
        self._grouped = GroupedSummation(self.params, 0)

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def spec_name(self) -> str:
        from ..core.repro_type import repro_spec_name

        return repro_spec_name(self.params) + "+streaming"

    # ------------------------------------------------------------------
    def update(self, keys, values) -> None:
        """Consume one batch of (key, value) pairs."""
        keys = np.asarray(keys)
        values = np.asarray(values)
        if keys.shape != values.shape or keys.ndim != 1:
            raise ValueError("keys and values must be equal-length 1-D")
        if keys.size == 0:
            return
        # Assign gids to unseen keys in first-arrival order.
        uniq = np.unique(keys)
        for key in uniq.tolist():
            if key not in self._gids:
                self._gids[key] = len(self._keys)
                self._keys.append(key)
        if len(self._keys) > self._grouped.ngroups:
            self._grouped.resize(len(self._keys))
        gids = np.asarray([self._gids[k] for k in keys.tolist()], dtype=np.int64)
        self._grouped.add_pairs(gids, values)

    def merge(self, other: "StreamingGroupSum") -> None:
        """Absorb another stream (per-worker partials, spilled runs)."""
        if other.params != self.params:
            raise ValueError("cannot merge streams with different params")
        if not other._keys:
            return
        for key in other._keys:
            if key not in self._gids:
                self._gids[key] = len(self._keys)
                self._keys.append(key)
        if len(self._keys) > self._grouped.ngroups:
            self._grouped.resize(len(self._keys))
        mapping = np.asarray(
            [self._gids[k] for k in other._keys], dtype=np.int64
        )
        self._grouped.merge(other._grouped, mapping)

    def result(self) -> GroupByResult:
        """Finalise into (key, aggregate) pairs."""
        keys = np.asarray(self._keys)
        return GroupByResult(keys, self._grouped.finalize(), self.spec_name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StreamingGroupSum({len(self)} groups, {self.params.fmt.name})"
