"""Machine descriptor for the performance model.

The paper's testbed (Section VI-A): two Intel Xeon E5-2630 v3
(Haswell-EP), 8 cores/socket at 2.4 GHz, 32 KiB L1D + 256 KiB L2
private, 20 MiB LLC shared, AVX (V = 4 doubles / 8 floats), one socket
used, HyperThreading and frequency scaling off.

Pure Python cannot time that machine, so the figure benches run an
analytic cost model over this descriptor (see
:mod:`repro.simulator.costmodel`), calibrated against the anchor
numbers the paper itself reports.  DESIGN.md §2 documents the
substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Machine", "HASWELL_EP"]


@dataclass(frozen=True)
class Machine:
    """Hardware parameters the cost model consumes."""

    name: str = "2x Xeon E5-2630 v3 (Haswell-EP)"
    frequency_ghz: float = 2.4
    cores: int = 8
    l1_bytes: int = 32 * 1024
    l2_bytes: int = 256 * 1024
    llc_bytes: int = 20 * 1024 * 1024
    cache_line: int = 64
    #: AVX register width in bytes (V = 32/sizeof(T) lanes).
    simd_bytes: int = 32
    #: Effective fraction of the per-core LLC share usable as working
    #: set before misses dominate (the paper observes the cliff at
    #: ~1 MiB = 0.4 * 20 MiB / 8).
    llc_effective_fraction: float = 0.4

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.frequency_ghz

    @property
    def llc_per_core(self) -> int:
        return self.llc_bytes // self.cores

    @property
    def effective_cache_bytes(self) -> int:
        """~1 MiB on the paper's machine."""
        return int(self.llc_bytes * self.llc_effective_fraction / self.cores)

    def simd_lanes(self, scalar_bytes: int) -> int:
        return max(1, self.simd_bytes // scalar_bytes)


HASWELL_EP = Machine()
