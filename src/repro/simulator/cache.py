"""Cache models: a set-associative LRU simulator and a working-set model.

Two levels of fidelity:

* :class:`SetAssociativeCache` — a faithful trace-driven LRU cache.
  Used by the tests to validate the analytic hit-rate formula on small
  synthetic access traces (random probes over a working set), and
  available for detailed what-if studies.
* :func:`random_access_hit_rate` — the closed-form model the figure
  benches use: for uniformly random probes over a working set of
  ``ws`` bytes and a cache of ``c`` bytes, the steady-state hit rate is
  ``min(1, c / ws)``.  This is exactly the working-set argument of the
  paper's Section V-C (Equation 4 sizes buffers so ``ws <= c``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["SetAssociativeCache", "random_access_hit_rate", "simulate_hit_rate"]


class SetAssociativeCache:
    """Trace-driven set-associative LRU cache."""

    def __init__(self, size_bytes: int, ways: int = 8, line_bytes: int = 64):
        if size_bytes % (ways * line_bytes):
            raise ValueError("size must be a multiple of ways * line size")
        self.line_bytes = line_bytes
        self.ways = ways
        self.nsets = size_bytes // (ways * line_bytes)
        # sets[set_index] = list of tags, most-recently-used last.
        self._sets: list[list[int]] = [[] for _ in range(self.nsets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        line = address // self.line_bytes
        index = line % self.nsets
        tag = line // self.nsets
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True
        ways.append(tag)
        if len(ways) > self.ways:
            ways.pop(0)  # evict LRU
        self.misses += 1
        return False

    def access_block(self, address: int, nbytes: int) -> int:
        """Touch a byte range; returns the number of line misses."""
        first = address // self.line_bytes
        last = (address + max(nbytes, 1) - 1) // self.line_bytes
        misses = 0
        for line in range(first, last + 1):
            if not self.access(line * self.line_bytes):
                misses += 1
        return misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0


def random_access_hit_rate(working_set_bytes: int, cache_bytes: int) -> float:
    """Closed-form steady-state hit rate for uniform random accesses."""
    if working_set_bytes <= 0:
        return 1.0
    return min(1.0, cache_bytes / working_set_bytes)


def simulate_hit_rate(
    working_set_bytes: int,
    cache_bytes: int,
    accesses: int = 20000,
    stride: int = 64,
    ways: int = 8,
    seed: int = 0,
) -> float:
    """Monte-Carlo check of :func:`random_access_hit_rate` with the LRU sim.

    Random line-granular probes over a working set; the warm-up phase
    (one pass over the cache capacity) is excluded from the counters.
    """
    cache = SetAssociativeCache(cache_bytes, ways=ways, line_bytes=stride)
    lines = max(1, working_set_bytes // stride)
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, lines, size=accesses) * stride
    warmup = min(accesses // 2, cache_bytes // stride * 2)
    for address in addresses[:warmup]:
        cache.access(int(address))
    cache.reset_counters()
    for address in addresses[warmup:]:
        cache.access(int(address))
    return cache.hit_rate
