"""Performance substrate: calibrated cost model of the paper's testbed.

See DESIGN.md §2 for the substitution rationale (Haswell-EP + AVX C++
-> analytic model + cache simulator, calibrated on the paper's own
anchor numbers).
"""

from .cache import SetAssociativeCache, random_access_hit_rate, simulate_hit_rate
from .costmodel import DTYPES, CostModel, DtypeModel, dtype_model
from .machine import HASWELL_EP, Machine
from .perf import (
    PAPER_ANCHORS,
    fig4_series,
    fig6_series,
    fig7_series,
    fig8_series,
    fig9_series,
    fig10_series,
    fig11_series,
    fig12_series,
    sort_baseline_series,
    table3_geomeans,
)
from .perf import fig6_crossover

__all__ = [
    "Machine",
    "HASWELL_EP",
    "SetAssociativeCache",
    "random_access_hit_rate",
    "simulate_hit_rate",
    "CostModel",
    "DtypeModel",
    "DTYPES",
    "dtype_model",
    "PAPER_ANCHORS",
    "fig4_series",
    "fig6_series",
    "fig6_crossover",
    "fig7_series",
    "fig8_series",
    "fig9_series",
    "fig10_series",
    "fig11_series",
    "fig12_series",
    "table3_geomeans",
    "sort_baseline_series",
]
