"""Figure/table series generators over the cost model.

Each function returns the rows of one of the paper's performance plots,
computed from :class:`~repro.simulator.costmodel.CostModel`, alongside
the paper's reported anchor values where the paper states them
(:data:`PAPER_ANCHORS`).  The ``benchmarks/`` harnesses print these
side by side with scaled-down wall-clock measurements of the Python
kernels.
"""

from __future__ import annotations

import math

from .costmodel import DTYPES, CostModel, DtypeModel, dtype_model

__all__ = [
    "PAPER_ANCHORS",
    "fig4_series",
    "fig6_series",
    "fig7_series",
    "fig8_series",
    "fig9_series",
    "fig10_series",
    "fig11_series",
    "fig12_series",
    "table3_geomeans",
    "sort_baseline_series",
]

#: Values the paper states explicitly (figures' annotations and tables).
PAPER_ANCHORS = {
    "fig4_ratios": {
        "uint32": 1.00, "float": 0.99, "double": 1.10,
        "repro<float,1>": 3.73, "repro<float,2>": 6.03,
        "repro<float,3>": 8.37, "repro<float,4>": 11.56,
        "repro<double,1>": 3.91, "repro<double,2>": 6.42,
        "repro<double,3>": 8.85, "repro<double,4>": 12.27,
    },
    "fig6_annotations": {
        ("float", 2): {"crossover": 24, "plateau_pct": +17.6},
        ("float", 3): {"crossover": 12, "plateau_pct": +25.4},
        ("double", 2): {"crossover": 48, "plateau_pct": -24.7},
        ("double", 3): {"crossover": 48, "plateau_pct": -7.4},
    },
    "table3": {
        "repro<double,1>": 2.12, "repro<double,2>": 2.18,
        "repro<double,3>": 2.29, "repro<double,4>": 2.41,
        "repro<float,1>": 1.88, "repro<float,2>": 2.11,
        "repro<float,3>": 2.16, "repro<float,4>": 2.35,
    },
    "table4": {  # % of unmodified-MonetDB total CPU time
        "double": {"aggregations": 34.2, "other": 65.8, "total": 100.0},
        "repro<double,4> w/o buffer": {"aggregations": 51.3, "other": 63.1, "total": 114.4},
        "repro<double,4> with buffer": {"aggregations": 38.7, "other": 64.0, "total": 102.7},
        "double (sorted)": {"aggregations": 45.1, "other": 682.1, "total": 727.2},
    },
    "headline_slowdown_range": (1.9, 2.4),
    "fig9_thresholds": {"d1": 2**10, "d2": 2**18},
    "sort_agg_ns": 60.0,
}

_FIG4_LABELS = [
    "uint32", "float", "double",
    "repro<float,1>", "repro<float,2>", "repro<float,3>", "repro<float,4>",
    "repro<double,1>", "repro<double,2>", "repro<double,3>", "repro<double,4>",
]

_FIG7_LABELS = [
    "DECIMAL(9)", "DECIMAL(18)", "DECIMAL(38)",
    "repro<float,2>", "repro<float,3>",
    "repro<double,2>", "repro<double,3>",
]

_FIG10_REPRO = [
    "repro<float,2>", "repro<float,3>", "repro<double,2>", "repro<double,3>",
]


def fig4_series(model: CostModel | None = None, ngroups: int = 16, n: int = 2**30):
    """Figure 4: HASHAGGREGATION cost per data type at 16 groups."""
    model = model or CostModel()
    base = model.hash_agg_total_ns(dtype_model("uint32"), ngroups, n)
    rows = []
    for label in _FIG4_LABELS:
        ns = model.hash_agg_total_ns(dtype_model(label), ngroups, n)
        rows.append(
            {
                "dtype": label,
                "model_ns": ns,
                "model_ratio": ns / base,
                "paper_ratio": PAPER_ANCHORS["fig4_ratios"][label],
            }
        )
    return rows


def fig6_series(model: CostModel | None = None, double: bool = True,
                levels: int = 2, chunks=None):
    """Figure 6: chunked RSUM SCALAR/SIMD slowdown vs conventional sum."""
    model = model or CostModel()
    chunks = chunks or [2**i for i in range(1, 10)]
    conv = model.conv_sum_ns(double)
    rows = []
    for chunk in chunks:
        scalar = model.rsum_scalar_ns(levels, double, chunk)
        simd = model.rsum_simd_ns(levels, double, chunk)
        rows.append(
            {
                "chunk": chunk,
                "scalar_slowdown": scalar / conv,
                "simd_slowdown": simd / conv,
            }
        )
    inf = model.rsum_simd_ns(levels, double, float("inf"))
    return rows, {"simd_inf_slowdown": inf / conv, "conv_ns": conv}


def fig6_crossover(model: CostModel | None = None, double: bool = True,
                   levels: int = 2) -> int:
    """Smallest power-of-two chunk where SIMD beats SCALAR."""
    model = model or CostModel()
    for exp in range(1, 12):
        chunk = 2**exp
        if model.rsum_simd_ns(levels, double, chunk) <= model.rsum_scalar_ns(
            levels, double, chunk
        ):
            return chunk
    return 2**12


def fig7_series(model: CostModel | None = None, group_exps=None, n: int = 2**30):
    """Figure 7: unbuffered PARTITIONANDAGGREGATE across group counts."""
    model = model or CostModel()
    group_exps = group_exps if group_exps is not None else list(range(0, 31, 2))
    float_base = dtype_model("float")
    out = {"ngroups": [2**e for e in group_exps], "series": {}, "slowdown": {}}
    base_ns = [
        model.partition_and_aggregate_ns(float_base, 2**e, n) for e in group_exps
    ]
    out["series"]["float"] = base_ns
    for label in _FIG7_LABELS:
        dt = dtype_model(label)
        ns = [model.partition_and_aggregate_ns(dt, 2**e, n) for e in group_exps]
        out["series"][label] = ns
        out["slowdown"][label] = [a / b for a, b in zip(ns, base_ns)]
    return out


def fig8_series(model: CostModel | None = None, n: int = 2**30):
    """Figure 8: buffer-size impact on PARTITIONANDAGGREGATE with d = 0."""
    model = model or CostModel()
    buffer_sizes = [2**i for i in range(4, 11)]
    labels = _FIG10_REPRO
    panel_a, panel_b = {}, {}
    for label in labels:
        dt = dtype_model(label).buffered()
        panel_a[label] = [
            model.hash_agg_total_ns(dt, 16, n, buffer_size=bsz)
            for bsz in buffer_sizes
        ]
        panel_b[label] = [
            model.hash_agg_total_ns(dt, 1024, n, buffer_size=bsz)
            for bsz in buffer_sizes
        ]
    group_exps = list(range(4, 15))
    dt_f2 = dtype_model("repro<float,2>").buffered()
    panel_c = {
        bsz: [
            model.hash_agg_total_ns(dt_f2, 2**e, n, buffer_size=bsz)
            for e in group_exps
        ]
        for bsz in (16, 64, 256, 1024)
    }
    return {
        "buffer_sizes": buffer_sizes,
        "panel_a": panel_a,
        "panel_b": panel_b,
        "group_exps": group_exps,
        "panel_c": panel_c,
    }


def fig9_series(model: CostModel | None = None, n: int = 2**30, group_exps=None):
    """Figure 9: partitioning depth d = 0, 1, 2 for repro<float,2>+buf."""
    model = model or CostModel()
    group_exps = group_exps if group_exps is not None else list(range(0, 27, 2))
    dt = dtype_model("repro<float,2>").buffered()
    series = {
        depth: [
            model.partition_and_aggregate_ns(dt, 2**e, n, depth=depth)
            for e in group_exps
        ]
        for depth in (0, 1, 2)
    }
    # Cross-over thresholds the model implies.
    thresholds = {}
    for d_hi, key in ((1, "d1"), (2, "d2")):
        for e in group_exps:
            lo = series[d_hi - 1][group_exps.index(e)]
            hi = series[d_hi][group_exps.index(e)]
            if hi < lo:
                thresholds[key] = 2**e
                break
    return {"group_exps": group_exps, "series": series, "thresholds": thresholds}


def fig10_series(model: CostModel | None = None, group_exps=None, n: int = 2**30):
    """Figure 10: buffered PARTITIONANDAGGREGATE vs DECIMAL / float /
    unbuffered (three panels)."""
    model = model or CostModel()
    group_exps = group_exps if group_exps is not None else list(range(0, 31, 2))
    ngroups_list = [2**e for e in group_exps]
    out = {"ngroups": ngroups_list, "ns": {}, "slowdown": {}, "speedup": {}}
    float_ns = [
        model.partition_and_aggregate_ns(dtype_model("float"), g, n)
        for g in ngroups_list
    ]
    out["ns"]["float"] = float_ns
    for label in ("DECIMAL(9)", "DECIMAL(18)", "DECIMAL(38)"):
        out["ns"][label] = [
            model.partition_and_aggregate_ns(dtype_model(label), g, n)
            for g in ngroups_list
        ]
    for label in _FIG10_REPRO:
        buffered = dtype_model(label).buffered()
        unbuffered = dtype_model(label)
        ns_buf = [
            model.partition_and_aggregate_ns(buffered, g, n) for g in ngroups_list
        ]
        ns_unbuf = [
            model.partition_and_aggregate_ns(unbuffered, g, n)
            for g in ngroups_list
        ]
        out["ns"][label] = ns_buf
        out["slowdown"][label] = [a / b for a, b in zip(ns_buf, float_ns)]
        out["speedup"][label] = [a / b for a, b in zip(ns_unbuf, ns_buf)]
    return out


def table3_geomeans(model: CostModel | None = None, n: int = 2**30,
                    group_exps=None) -> dict:
    """Table III: geometric-mean slowdown of buffered repro vs float."""
    model = model or CostModel()
    group_exps = group_exps if group_exps is not None else list(range(0, 31, 2))
    ngroups_list = [2**e for e in group_exps]
    float_ns = [
        model.partition_and_aggregate_ns(dtype_model("float"), g, n)
        for g in ngroups_list
    ]
    out = {}
    for scalar in ("double", "float"):
        for levels in (1, 2, 3, 4):
            label = f"repro<{scalar},{levels}>"
            buffered = dtype_model(label).buffered()
            ns = [
                model.partition_and_aggregate_ns(buffered, g, n)
                for g in ngroups_list
            ]
            logs = [math.log(a / b) for a, b in zip(ns, float_ns)]
            out[label] = math.exp(sum(logs) / len(logs))
    return out


def fig11_series(model: CostModel | None = None, input_exps=None,
                 bsz: int = 256) -> dict:
    """Figure 11: distinct-data drop for various input sizes."""
    model = model or CostModel()
    input_exps = input_exps if input_exps is not None else list(range(25, 31))
    dt = dtype_model("repro<float,2>").buffered()
    out = {"inputs": {}, "group_exps": {}}
    for n_exp in input_exps:
        n = 2**n_exp
        group_exps = list(range(20, n_exp + 1))
        out["group_exps"][n_exp] = group_exps
        out["inputs"][n_exp] = [
            model.partition_and_aggregate_ns(dt, 2**e, n, buffer_size=bsz)
            for e in group_exps
        ]
    return out


def fig12_series(model: CostModel | None = None, n: int = 2**30) -> dict:
    """Figure 12: buffer-size impact with one partitioning pass (d = 1)."""
    model = model or CostModel()
    buffer_sizes = [2**i for i in range(4, 11)]
    labels = _FIG10_REPRO
    panel_a, panel_b = {}, {}
    for label in labels:
        dt = dtype_model(label).buffered()
        panel_a[label] = [
            model.partition_and_aggregate_ns(dt, 4096, n, depth=1, buffer_size=bsz)
            for bsz in buffer_sizes
        ]
        panel_b[label] = [
            model.partition_and_aggregate_ns(dt, 262144, n, depth=1, buffer_size=bsz)
            for bsz in buffer_sizes
        ]
    group_exps = list(range(12, 23))
    dt_f2 = dtype_model("repro<float,2>").buffered()
    panel_c = {
        bsz: [
            model.partition_and_aggregate_ns(dt_f2, 2**e, n, depth=1, buffer_size=bsz)
            for e in group_exps
        ]
        for bsz in (16, 64, 256, 1024)
    }
    return {
        "buffer_sizes": buffer_sizes,
        "panel_a": panel_a,
        "panel_b": panel_b,
        "group_exps": group_exps,
        "panel_c": panel_c,
    }


def sort_baseline_series(model: CostModel | None = None, n: int = 2**30,
                         group_exps=None) -> dict:
    """Section VI-A: SORTAGGREGATION vs our algorithm."""
    model = model or CostModel()
    group_exps = group_exps if group_exps is not None else list(range(0, 27, 2))
    dt = dtype_model("repro<float,2>").buffered()
    ours = [
        model.partition_and_aggregate_ns(dt, 2**e, n) for e in group_exps
    ]
    sort_ns = model.sort_aggregate_ns(dtype_model("float"), n)
    return {
        "group_exps": group_exps,
        "ours_ns": ours,
        "sort_ns": sort_ns,
        "paper_sort_ns": PAPER_ANCHORS["sort_agg_ns"],
    }
