"""Calibrated analytic cost model of the paper's testbed.

Pure Python cannot reproduce ns-per-element measurements of
hand-vectorised C++ on Haswell-EP, so the figure benches regenerate the
paper's performance series from this model (DESIGN.md §2 documents the
substitution).  The model prices one input element of each algorithm as

    probe + accumulate + cache penalties (+ amortised flush)
    + partitioning passes + result write-back,

with the cache penalties driven by the *same working-set formula* the
paper itself uses for tuning (Section V-C / Equation 4).  The constants
below are calibrated against anchors the paper reports:

* Figure 4's slowdown ratios of ``repro<T,L>`` at 16 groups
  (3.73x .. 12.27x) pin the per-level extraction cost;
* Figure 6's plateaus ("at most 25 % slower than CONV [single], even
  somewhat faster in case of double") and cross-overs ("between c = 12
  and c = 48") pin the RSUM SIMD constants;
* Figure 7/10's partitioning step heights and the ~1 MiB working-set
  cliff pin the partitioning and miss costs;
* the Figure 9 thresholds (2**10 groups per level) emerge from the
  model rather than being encoded.

Everything is per-element CPU time in nanoseconds, matching the
paper's "CPU time [ns] per element" axes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.tuning import optimal_buffer_size
from .machine import HASWELL_EP, Machine

__all__ = ["DtypeModel", "CostModel", "DTYPES", "dtype_model"]


@dataclass(frozen=True)
class DtypeModel:
    """Cost-relevant description of an accumulator data type."""

    label: str
    kind: str  # 'int' | 'float' | 'decimal' | 'repro' | 'repro_buf'
    scalar_bytes: int  # width of the *input value* moved around
    add_ns: float  # in-cache operator+= cost
    entry_bytes: int  # hash-table intermediate-aggregate footprint
    levels: int = 0  # repro only
    is_double: bool = True
    buffer_size: int | None = None  # repro_buf only (None: Equation 4)

    def buffered(self, buffer_size: int | None = None) -> "DtypeModel":
        """The buffered variant of a repro type (Figure 5 layout)."""
        if self.kind != "repro":
            raise ValueError("only repro types can be buffered")
        return replace(
            self,
            kind="repro_buf",
            label=self.label + "+buf",
            buffer_size=buffer_size,
        )


# -- calibration constants (ns) ------------------------------------------
_PROBE = 1.2  # hash probe, in cache
_APPEND = 0.8  # store into a summation buffer + offset bump

# Figure 4 fits: repro add cost = A0 + A1 * L  (ratios 3.73..12.27 over
# a 2.0 ns baseline at 16 groups).
_REPRO_A0 = {"float": 1.10, "double": 1.15}
_REPRO_A1 = {"float": 5.21, "double": 5.56}

# Conventional summation (std::accumulate, not fully vectorised).
_CONV_SUM = {"float": 0.75, "double": 1.30}
# RSUM SIMD steady state: max(memory floor, per-level compute).
_SIMD_FLOOR = {"float": 0.88, "double": 1.05}
_SIMD_LEVEL = {"float": 0.30, "double": 0.40}
# RSUM SCALAR per-level compute (serial dependency chain).
_SCALAR_LEVEL = {"float": 2.00, "double": 1.50}
# Per-call state load/store overheads (ns): scalar state is L (S, C)
# pairs; the SIMD state is V times larger plus the horizontal sum.
_CALL_OVH_SCALAR_PER_LEVEL = 9.0
_CALL_OVH_SIMD_FIXED = 30.0

# Cache penalties per random access that misses a given level (ns).
_PEN_L1 = 0.6
_PEN_L2 = 2.0
_PEN_LLC = 18.0
# Buffered aggregates take a second dependent miss (offset + slot).
_BUF_SECOND_MISS = 6.0

# Streaming partitioning pass: fixed work + per-byte traffic (read +
# write through the fill buffers).
_PART_FIXED = 1.2
_PART_PER_BYTE = 0.25

# Result / transfer write-back per byte (streaming to RAM).
_WB_PER_BYTE = 0.10


def _repro_add_ns(scalar: str, levels: int) -> float:
    return _REPRO_A0[scalar] + _REPRO_A1[scalar] * levels


def _repro_entry(levels: int) -> int:
    return 8 + 16 * levels  # key + L * (S, C)


DTYPES: dict[str, DtypeModel] = {
    "uint32": DtypeModel("uint32", "int", 4, 0.80, 16, is_double=False),
    "float": DtypeModel("float", "float", 4, 0.78, 16, is_double=False),
    "double": DtypeModel("double", "float", 8, 1.00, 16, is_double=True),
    "DECIMAL(9)": DtypeModel("DECIMAL(9)", "decimal", 4, 0.80, 16, is_double=False),
    "DECIMAL(18)": DtypeModel("DECIMAL(18)", "decimal", 8, 1.00, 16, is_double=True),
    "DECIMAL(38)": DtypeModel("DECIMAL(38)", "decimal", 16, 2.80, 24, is_double=True),
}
for _scalar, _dbl in (("float", False), ("double", True)):
    for _levels in (1, 2, 3, 4):
        _label = f"repro<{_scalar},{_levels}>"
        DTYPES[_label] = DtypeModel(
            _label,
            "repro",
            4 if _scalar == "float" else 8,
            _repro_add_ns(_scalar, _levels),
            _repro_entry(_levels),
            levels=_levels,
            is_double=_dbl,
        )


def dtype_model(label: str) -> DtypeModel:
    try:
        return DTYPES[label]
    except KeyError:
        raise KeyError(f"unknown dtype label {label!r}; known: {sorted(DTYPES)}") from None


class CostModel:
    """Per-element CPU-time model over a :class:`Machine`."""

    def __init__(self, machine: Machine = HASWELL_EP):
        self.machine = machine

    # -- scalar-precision helpers ----------------------------------------
    @staticmethod
    def _scalar(dtype: DtypeModel) -> str:
        return "double" if dtype.is_double else "float"

    # -- Section III kernels (Figure 6) -----------------------------------
    def conv_sum_ns(self, double: bool = True) -> float:
        """std::accumulate over one long vector."""
        return _CONV_SUM["double" if double else "float"]

    def rsum_scalar_ns(self, levels: int, double: bool = True,
                       chunk: float = float("inf")) -> float:
        """RSUM SCALAR called once per ``chunk`` values (Algorithm 2)."""
        scalar = "double" if double else "float"
        per_element = _SCALAR_LEVEL[scalar] * levels
        call_overhead = _CALL_OVH_SCALAR_PER_LEVEL * levels
        return per_element + call_overhead / max(chunk, 1.0)

    def rsum_simd_ns(self, levels: int, double: bool = True,
                     chunk: float = float("inf")) -> float:
        """RSUM SIMD called once per ``chunk`` values (Algorithm 3)."""
        scalar = "double" if double else "float"
        lanes = self.machine.simd_lanes(8 if double else 4)
        per_element = max(_SIMD_FLOOR[scalar], _SIMD_LEVEL[scalar] * levels)
        call_overhead = (
            _CALL_OVH_SCALAR_PER_LEVEL * levels * lanes / 2.0
            + _CALL_OVH_SIMD_FIXED
        )
        return per_element + call_overhead / max(chunk, 1.0)

    # -- cache penalties ----------------------------------------------------
    def probe_penalty_ns(self, working_set_bytes: float,
                         double_indirection: bool = False) -> float:
        """Expected extra latency of one random probe over ``ws`` bytes."""
        m = self.machine
        miss_l1 = max(0.0, 1.0 - m.l1_bytes / max(working_set_bytes, 1.0))
        miss_l2 = max(0.0, 1.0 - m.l2_bytes / max(working_set_bytes, 1.0))
        miss_llc = max(
            0.0, 1.0 - m.effective_cache_bytes / max(working_set_bytes, 1.0)
        )
        penalty = miss_l1 * _PEN_L1 + miss_l2 * _PEN_L2 + miss_llc * _PEN_LLC
        if double_indirection:
            penalty += miss_llc * _BUF_SECOND_MISS
        return penalty

    # -- aggregation phases ----------------------------------------------------
    def hash_agg_ns(self, dtype: DtypeModel, groups_per_partition: float,
                    records_per_group: float,
                    buffer_size: int | None = None) -> float:
        """Final HASHAGGREGATION phase, per input element."""
        gpp = max(groups_per_partition, 1.0)
        if dtype.kind in ("int", "float", "decimal"):
            ws = gpp * dtype.entry_bytes
            return _PROBE + dtype.add_ns + self.probe_penalty_ns(ws)
        if dtype.kind == "repro":
            ws = gpp * dtype.entry_bytes
            return _PROBE + dtype.add_ns + self.probe_penalty_ns(ws)
        if dtype.kind == "repro_buf":
            bsz = buffer_size if buffer_size is not None else dtype.buffer_size
            if bsz is None:
                bsz = optimal_buffer_size(int(gpp), dtype.scalar_bytes)
            # Working set per Equation 4's own footprint measure,
            # ngroups * sizeof(ScalarT) * bsz (the paper's model ignores
            # the S/C/next header, and its measurements validate that).
            ws = gpp * bsz * dtype.scalar_bytes
            chunk_eff = min(float(bsz), max(records_per_group, 1.0))
            # The engine flushes through whichever routine wins at this
            # chunk size (the paper's own Figure 6 shows SCALAR beats
            # SIMD below the cross-over).
            flush = min(
                self.rsum_simd_ns(dtype.levels, dtype.is_double, chunk_eff),
                self.rsum_scalar_ns(dtype.levels, dtype.is_double, chunk_eff),
            )
            return (
                _PROBE
                + _APPEND
                + self.probe_penalty_ns(ws, double_indirection=True)
                + flush
            )
        raise ValueError(f"unknown dtype kind {dtype.kind!r}")

    def partition_pass_ns(self, dtype: DtypeModel) -> float:
        """One radix-256 partitioning pass over (key, value) records."""
        record_bytes = 4 + dtype.scalar_bytes  # uint32 key + value
        return _PART_FIXED + _PART_PER_BYTE * record_bytes

    def writeback_ns(self, dtype: DtypeModel, ngroups: float, n: float) -> float:
        """Evicting the final result (and buffered transfer) to RAM."""
        out_bytes = dtype.entry_bytes
        per_group = out_bytes * _WB_PER_BYTE
        if dtype.kind == "repro_buf":
            # Local aggregates are flushed and copied into the shared
            # table (Algorithm 4 lines 4-6) before the result is
            # written: one more pass over the group state.
            per_group += (16 * dtype.levels + 8) * _WB_PER_BYTE + 6.0
        return per_group * (ngroups / max(n, 1.0))

    # -- whole algorithms --------------------------------------------------------
    def partition_and_aggregate_ns(
        self,
        dtype: DtypeModel,
        ngroups: int,
        n: int = 2**30,
        depth: int | None = None,
        fanout: int = 256,
        buffer_size: int | None = None,
        threads: int = 8,
    ) -> float:
        """Per-element CPU time of Algorithm 4 (the paper's main metric)."""
        if depth is None:
            depth = self.best_depth(dtype, ngroups, n, fanout, buffer_size)
        nparts = fanout**depth
        gpp = max(1.0, ngroups / nparts)
        rpg = max(1.0, n / max(ngroups, 1))
        agg = self.hash_agg_ns(dtype, gpp, rpg, buffer_size)
        # Idle threads when there are fewer busy partitions than cores
        # (paper footnote 12): aggregation wall time scales up.
        busy = min(nparts, max(ngroups, 1))
        if depth > 0 and busy < threads:
            agg *= threads / busy
        total = depth * self.partition_pass_ns(dtype) + agg
        total += self.writeback_ns(dtype, ngroups, n)
        return total

    def best_depth(self, dtype: DtypeModel, ngroups: int, n: int = 2**30,
                   fanout: int = 256, buffer_size: int | None = None,
                   max_depth: int = 3) -> int:
        """Offline depth tuning (Section V-C): pick the cheapest depth."""
        costs = [
            self.partition_and_aggregate_ns(
                dtype, ngroups, n, depth, fanout, buffer_size
            )
            for depth in range(max_depth + 1)
        ]
        return costs.index(min(costs))

    def hash_agg_total_ns(self, dtype: DtypeModel, ngroups: int,
                          n: int = 2**30,
                          buffer_size: int | None = None) -> float:
        """Plain HASHAGGREGATION (no partitioning), per element."""
        return self.partition_and_aggregate_ns(
            dtype, ngroups, n, depth=0, buffer_size=buffer_size
        )

    def sort_aggregate_ns(self, dtype: DtypeModel, n: int = 2**30) -> float:
        """SORTAGGREGATION baseline: the paper reports "over 60 ns"."""
        record_bytes = 4 + dtype.scalar_bytes
        # ~9 full sort passes (radix + merge fix-ups at ~2 ns fixed work
        # each, heavier than a partition pass) plus the final reduce
        # (Balkesen's tuned sort, paper §VI-A).
        return 9 * (2.0 + _PART_PER_BYTE * record_bytes) + dtype.add_ns + 26.0
