"""Typed exception hierarchy shared by the engine and the wire protocol.

Every error the engine raises deliberately derives from
:class:`ReproError` and carries a stable ``code`` string, so the
serving layer (:mod:`repro.server`) can serialize a failure faithfully
and the client (:mod:`repro.client`) can re-raise the *same* exception
type on the other side of the socket — a ``ParseError`` over the wire
is still a ``ParseError`` to the caller.

Several classes also inherit from the builtin exception the engine
historically raised (``ValueError`` for parse/bind/config failures,
``KeyError`` for catalog lookups), so existing callers that catch the
builtins keep working.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParseError",
    "BindError",
    "CatalogError",
    "ConfigError",
    "AdmissionError",
    "QueryTimeout",
    "ProtocolError",
    "ConnectionClosed",
    "StorageError",
    "SpillFormatError",
    "WalCorruptError",
    "CheckpointError",
    "error_code",
    "error_to_wire",
    "error_from_wire",
]


class ReproError(Exception):
    """Base of every engine-raised error.

    ``code`` is the stable wire identifier; subclasses override it.
    """

    code = "error"


class ParseError(ReproError, ValueError):
    """SQL text the lexer or parser rejects."""

    code = "parse_error"


class BindError(ReproError, ValueError):
    """Expression or name-resolution failure (unknown/ambiguous column,
    bad aggregate usage).  The engine's :class:`~repro.engine.expr.
    ExprError` family derives from this."""

    code = "bind_error"


class CatalogError(ReproError, KeyError, ValueError):
    """Catalog failure: missing/duplicate table or materialized view,
    DROP blocked by dependents.

    Inherits both ``KeyError`` (missing objects were a ``KeyError``
    before the hierarchy existed) and ``ValueError`` (duplicates were
    a ``ValueError``); ``__str__`` is restored to the plain message —
    ``KeyError``'s repr-quoting would leak into wire payloads.
    """

    code = "catalog_error"
    __str__ = Exception.__str__


class ConfigError(ReproError, ValueError):
    """Invalid session knob name or value (the ``SET`` pragma paths)."""

    code = "config_error"


class AdmissionError(ReproError):
    """The server refused to admit a query: the in-flight limit is
    reached and the backlog is full.  Overload degrades into this
    typed, immediate rejection instead of unbounded queueing."""

    code = "admission_rejected"


class QueryTimeout(ReproError):
    """A query exceeded the server's per-query deadline (queue wait
    plus execution)."""

    code = "query_timeout"


class ProtocolError(ReproError):
    """Malformed frame or unknown request on the wire."""

    code = "protocol_error"


class ConnectionClosed(ReproError):
    """The peer closed the connection mid-conversation."""

    code = "connection_closed"


class StorageError(ReproError):
    """Base of every durable-storage failure: spill files, the
    write-ahead log, and checkpoint images.  Carrying a stable code
    keeps storage failures typed across the server wire instead of
    leaking as bare ``ValueError`` text."""

    code = "storage_error"


class SpillFormatError(StorageError, ValueError):
    """A spill run file or framed payload is truncated, corrupted, or
    mis-shaped.

    Lives here (rather than :mod:`repro.storage.spill`, which re-exports
    it) so the serving layer can serialize it like every other engine
    error; inherits ``ValueError`` for the callers that predate the
    typed hierarchy."""

    code = "spill_format_error"


class WalCorruptError(StorageError):
    """The write-ahead log is damaged *before* its tail: a record in
    the committed middle of the log fails its CRC/frame check while
    later records are still intact.  Recovery refuses to continue —
    replaying around a hole could silently produce different bits.

    (A damaged *tail* is not this error: a torn final record is the
    expected crash shape and recovery truncates it.)"""

    code = "wal_corrupt"


class CheckpointError(StorageError):
    """A checkpoint image is unreadable (bad frame, CRC mismatch,
    unsupported layout) or could not be written."""

    code = "checkpoint_error"


#: code -> class, for re-raising a faithful type client-side.
_WIRE_TYPES = {
    cls.code: cls
    for cls in (
        ReproError,
        ParseError,
        BindError,
        CatalogError,
        ConfigError,
        AdmissionError,
        QueryTimeout,
        ProtocolError,
        ConnectionClosed,
        StorageError,
        SpillFormatError,
        WalCorruptError,
        CheckpointError,
    )
}


def error_code(exc: BaseException) -> str:
    """The stable wire code of an exception (generic for non-engine
    errors)."""
    return getattr(exc, "code", "error")


def error_to_wire(exc: BaseException) -> dict:
    """Serialize an exception for the wire protocol."""
    return {
        "code": error_code(exc),
        "type": type(exc).__name__,
        "message": str(exc),
    }


def error_from_wire(payload: dict) -> ReproError:
    """Rehydrate a wire error into the matching typed exception.

    Unknown codes degrade to :class:`ReproError`; the original
    type name is preserved in the message so nothing is lost.
    """
    code = payload.get("code", "error")
    message = payload.get("message", "")
    cls = _WIRE_TYPES.get(code)
    if cls is None:
        cls = ReproError
        type_name = payload.get("type")
        if type_name and type_name not in (cls.__name__,):
            message = f"{type_name}: {message}"
    return cls(message)
