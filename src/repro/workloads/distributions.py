"""Value distributions used across the paper's experiments.

* ``uniform12``      — U[1, 2), the benign case (Table II);
* ``exponential1``   — Exp(1), mild dynamic range (Table II);
* ``wide_exponent``  — log-uniform exponents, the "measurements /
  scientific data" regime Section II-C argues cannot use fixed point;
* ``cancellation``   — pairs (x, -x) plus noise: adversarial for
  conventional sums, where rounding errors dominate the tiny true sum;
* ``algorithm1``     — the paper's 3-row example values.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform12",
    "exponential1",
    "wide_exponent",
    "cancellation",
    "algorithm1_values",
    "DISTRIBUTIONS",
]


def uniform12(n: int, rng: np.random.Generator) -> np.ndarray:
    return rng.uniform(1.0, 2.0, size=n)


def exponential1(n: int, rng: np.random.Generator) -> np.ndarray:
    return rng.exponential(1.0, size=n)


def wide_exponent(n: int, rng: np.random.Generator,
                  min_exp: int = -40, max_exp: int = 40) -> np.ndarray:
    """Magnitudes spread log-uniformly over many binades, mixed signs."""
    exponents = rng.uniform(min_exp, max_exp, size=n)
    mantissas = rng.uniform(1.0, 2.0, size=n)
    signs = rng.choice([-1.0, 1.0], size=n)
    return signs * mantissas * np.exp2(exponents)


def cancellation(n: int, rng: np.random.Generator,
                 noise_scale: float = 1e-12) -> np.ndarray:
    """Large cancelling pairs plus tiny noise: the true sum is tiny,
    conventional partial sums are huge, so the result is dominated by
    order-dependent rounding."""
    half = n // 2
    big = rng.uniform(1e8, 1e9, size=half)
    noise = rng.normal(scale=noise_scale, size=n - 2 * half + half)
    values = np.concatenate([big, -big, noise[: n - 2 * half]])
    rng.shuffle(values)
    return values[:n]


def algorithm1_values() -> np.ndarray:
    """The paper's Algorithm 1 inputs."""
    return np.array([2.5e-16, 0.999999999999999, 2.5e-16])


DISTRIBUTIONS = {
    "U[1,2)": uniform12,
    "Exp(1)": exponential1,
    "wide": wide_exponent,
    "cancel": cancellation,
}
