"""Workload generators for the aggregation experiments.

The paper's standard input (Section VI-A): ``n = 2**30`` (key, value)
pairs, uint32 keys "drawn uniformly at random from the range
[0, ngroups)" — so the realised group count is slightly below
``ngroups`` when ``ngroups ~ n``.  Values are doubles/floats from one
of the :mod:`~repro.workloads.distributions`.

Python benches run the same sweeps at smaller ``n``; the generators are
seeded so every run (and every permutation of a run) is repeatable.
"""

from __future__ import annotations

import numpy as np

from .distributions import DISTRIBUTIONS

__all__ = [
    "make_pairs",
    "permuted",
    "chunked",
    "thread_chunks",
    "AggregationWorkload",
]


def make_pairs(
    n: int,
    ngroups: int,
    distribution: str = "Exp(1)",
    dtype=np.float64,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """The paper's standard (key, value) workload."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, ngroups, size=n, dtype=np.uint32)
    values = DISTRIBUTIONS[distribution](n, rng).astype(dtype)
    return keys, values


def permuted(keys: np.ndarray, values: np.ndarray, seed: int):
    """A random physical reordering of the same logical input."""
    order = np.random.default_rng(seed).permutation(len(keys))
    return keys[order], values[order]


def chunked(values: np.ndarray, chunk: int):
    """Split a value array into chunks of size ``chunk`` (Figure 6)."""
    return [values[i : i + chunk] for i in range(0, len(values), chunk)]


def thread_chunks(keys: np.ndarray, values: np.ndarray, threads: int):
    """Contiguous per-thread shares, like the parallel operators use."""
    bounds = np.linspace(0, len(keys), threads + 1).astype(np.int64)
    return [
        (keys[bounds[t] : bounds[t + 1]], values[bounds[t] : bounds[t + 1]])
        for t in range(threads)
    ]


class AggregationWorkload:
    """A named, reusable aggregation workload for benches and tests."""

    def __init__(self, n: int, ngroups: int, distribution: str = "Exp(1)",
                 dtype=np.float64, seed: int = 0):
        self.n = n
        self.ngroups = ngroups
        self.distribution = distribution
        self.dtype = np.dtype(dtype)
        self.seed = seed
        self.keys, self.values = make_pairs(n, ngroups, distribution, dtype, seed)

    def permutation(self, seed: int):
        return permuted(self.keys, self.values, seed)

    @property
    def realised_groups(self) -> int:
        return int(np.unique(self.keys).size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AggregationWorkload(n=2**{int(np.log2(self.n))}, "
            f"ngroups={self.ngroups}, {self.distribution})"
        )
