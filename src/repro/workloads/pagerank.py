"""The introduction's PageRank experiment.

    "We ran PageRank on different permutations of a small web graph
    with 900k pages.  We observed that, from one run to the next, the
    ranks of about 10-20 pages would be different enough to swap ranks
    with another page."

The Google web graph is not available offline, so we generate a
synthetic scale-free graph (preferential attachment — the standard
web-graph model) and run the same experiment: PageRank's inner loop is
a GROUP BY SUM (sum incoming rank contributions per target page), so
its result depends on edge order under conventional floats.  We count
how many pages swap rank positions between edge permutations, and show
the count drops to zero with reproducible summation.

The reduction is implemented over this package's own aggregation
kernels, making PageRank a realistic downstream application of the
library (the paper's REDUCEBYKEY point).
"""

from __future__ import annotations

import numpy as np

from ..aggregation.grouped import GroupedSummation
from ..core.params import RsumParams
from ..fp.formats import BINARY64

__all__ = [
    "synthetic_web_graph",
    "pagerank",
    "rank_swaps",
    "pagerank_experiment",
]


def synthetic_web_graph(npages: int, out_degree: int = 8, seed: int = 0):
    """Preferential-attachment edge list ``(src, dst)`` (scale-free)."""
    rng = np.random.default_rng(seed)
    sources = []
    targets = []
    # Seed clique.
    seed_pages = min(out_degree + 1, npages)
    for i in range(seed_pages):
        for j in range(seed_pages):
            if i != j:
                sources.append(i)
                targets.append(j)
    degree = np.ones(npages, dtype=np.float64)
    degree[:seed_pages] = seed_pages
    for page in range(seed_pages, npages):
        probs = degree[:page] / degree[:page].sum()
        links = rng.choice(page, size=min(out_degree, page), replace=False, p=probs)
        for link in links:
            sources.append(page)
            targets.append(int(link))
            degree[link] += 1
        degree[page] += out_degree
    return np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64)


def pagerank(
    src: np.ndarray,
    dst: np.ndarray,
    npages: int,
    iterations: int = 20,
    damping: float = 0.85,
    reproducible: bool = False,
    levels: int = 2,
) -> np.ndarray:
    """Power-iteration PageRank whose reduction is a GROUP BY SUM.

    ``reproducible=False`` accumulates contributions with conventional
    float adds *in edge order* (order-sensitive, like a parallel or
    storage-reordered engine); ``reproducible=True`` uses the
    bit-reproducible kernel.
    """
    out_degree = np.bincount(src, minlength=npages).astype(np.float64)
    out_degree[out_degree == 0] = 1.0
    ranks = np.full(npages, 1.0 / npages)
    params = RsumParams(BINARY64, levels)
    for _ in range(iterations):
        contrib = ranks[src] / out_degree[src]
        if reproducible:
            grouped = GroupedSummation.from_pairs(params, dst, contrib, npages)
            sums = grouped.finalize()
        else:
            sums = np.zeros(npages)
            np.add.at(sums, dst, contrib)
        ranks = (1.0 - damping) / npages + damping * sums
    return ranks


def rank_swaps(ranks_a: np.ndarray, ranks_b: np.ndarray) -> int:
    """Number of pages whose rank *position* differs between two runs."""
    order_a = np.argsort(-ranks_a, kind="stable")
    order_b = np.argsort(-ranks_b, kind="stable")
    pos_a = np.empty_like(order_a)
    pos_b = np.empty_like(order_b)
    pos_a[order_a] = np.arange(len(order_a))
    pos_b[order_b] = np.arange(len(order_b))
    return int(np.count_nonzero(pos_a != pos_b))


def pagerank_experiment(npages: int = 2000, permutations: int = 5,
                        seed: int = 0, iterations: int = 20) -> dict:
    """The intro experiment: rank swaps across edge permutations."""
    src, dst = synthetic_web_graph(npages, seed=seed)
    rng = np.random.default_rng(seed + 1)
    base_conv = pagerank(src, dst, npages, iterations, reproducible=False)
    base_repro = pagerank(src, dst, npages, iterations, reproducible=True)
    conv_swaps = []
    repro_swaps = []
    for _ in range(permutations):
        order = rng.permutation(len(src))
        conv = pagerank(src[order], dst[order], npages, iterations,
                        reproducible=False)
        rep = pagerank(src[order], dst[order], npages, iterations,
                       reproducible=True)
        conv_swaps.append(rank_swaps(base_conv, conv))
        repro_swaps.append(rank_swaps(base_repro, rep))
        assert np.array_equal(
            rep.view(np.uint64), base_repro.view(np.uint64)
        ) == (repro_swaps[-1] == 0)
    return {
        "npages": npages,
        "edges": len(src),
        "conventional_swaps": conv_swaps,
        "reproducible_swaps": repro_swaps,
    }
