"""Workload generators: distributions, aggregation pairs, PageRank."""

from .distributions import (
    DISTRIBUTIONS,
    algorithm1_values,
    cancellation,
    exponential1,
    uniform12,
    wide_exponent,
)
from .generators import (
    AggregationWorkload,
    chunked,
    make_pairs,
    permuted,
    thread_chunks,
)
from .pagerank import pagerank, pagerank_experiment, rank_swaps, synthetic_web_graph

__all__ = [
    "DISTRIBUTIONS",
    "uniform12",
    "exponential1",
    "wide_exponent",
    "cancellation",
    "algorithm1_values",
    "make_pairs",
    "permuted",
    "chunked",
    "thread_chunks",
    "AggregationWorkload",
    "pagerank",
    "synthetic_web_graph",
    "rank_swaps",
    "pagerank_experiment",
]
