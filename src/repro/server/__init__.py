"""Concurrent serving layer: many sessions, one reproducible database.

The paper's guarantee is per *query*: a repro-mode aggregate returns
the same bits for any morsel schedule and worker count.  The server
extends it to a *service*: every connection gets its own
:class:`~repro.engine.session.Session` (its own SUM configuration and
execution knobs) over the shared catalog, reads run snapshot-isolated
against the MVCC row versions, and writers serialize per table — so a
query's result bits are fixed at admission no matter what the other
sessions are doing.

:class:`ReproServer` is a small asyncio front end over the threaded
engine: connections speak the length-prefixed JSON protocol of
:mod:`repro.server.protocol`, statements execute on a thread pool
sized to the admission limit, and :class:`AdmissionGate` bounds both
the in-flight statements and the waiting backlog — overload is an
immediate typed :class:`~repro.errors.AdmissionError`, not an
ever-growing queue; slow statements hit the per-query
:class:`~repro.errors.QueryTimeout` deadline.

    db = Database(sum_mode="repro")
    async with ReproServer(db, port=7474) as server:
        ...                       # clients: repro.connect((host, port))

or from the shell: ``python -m repro.server --port 7474``.
"""

from __future__ import annotations

import asyncio
import collections
from concurrent.futures import ThreadPoolExecutor

from ..errors import AdmissionError, ProtocolError, QueryTimeout, error_to_wire
from .protocol import encode_result, read_frame, write_frame

__all__ = ["AdmissionGate", "ReproServer"]


class AdmissionGate:
    """Bounded admission: ``max_inflight`` statements run, at most
    ``max_backlog`` wait, the rest are rejected *immediately* with a
    typed :class:`AdmissionError`.

    Single-loop asyncio discipline: all methods run on the event loop
    thread, so plain counters are race-free.  FIFO hand-off — a
    released slot goes to the longest-waiting statement.
    """

    def __init__(self, max_inflight: int, max_backlog: int):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_backlog < 0:
            raise ValueError("max_backlog must be >= 0")
        self.max_inflight = max_inflight
        self.max_backlog = max_backlog
        self.inflight = 0
        self._waiters: collections.deque[asyncio.Future] = collections.deque()
        #: lifetime counters (surfaced by the stats op / benchmarks)
        self.admitted = 0
        self.rejected = 0

    @property
    def queued(self) -> int:
        return len(self._waiters)

    async def acquire(self) -> None:
        """Admit or queue the calling statement; raise
        :class:`AdmissionError` when both the slots and the backlog
        are full."""
        if self.inflight < self.max_inflight and not self._waiters:
            self.inflight += 1
            self.admitted += 1
            return
        if len(self._waiters) >= self.max_backlog:
            self.rejected += 1
            raise AdmissionError(
                f"server at capacity: {self.inflight} statements in "
                f"flight, {len(self._waiters)} queued "
                f"(max_backlog={self.max_backlog})"
            )
        waiter = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        try:
            await waiter
        except asyncio.CancelledError:
            if waiter in self._waiters:
                self._waiters.remove(waiter)
            elif waiter.done() and not waiter.cancelled():
                # The slot was handed to us in the same tick we were
                # cancelled: pass it on.
                self._release_slot()
            raise
        self.admitted += 1

    def release(self) -> None:
        self._release_slot()

    def _release_slot(self) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                # Hand the slot over; inflight count is unchanged.
                waiter.set_result(None)
                return
        self.inflight -= 1


class ReproServer:
    """Asyncio TCP / unix-socket server over a shared ``Database``.

    Each accepted connection performs a ``hello`` (optionally carrying
    session options) and gets a dedicated engine session —
    ``session_factory(**options)`` when given, else
    ``database.session(**options)``.  Statements run on a thread pool
    (``max_inflight`` threads — one per admissible statement) under
    the :class:`AdmissionGate` and the per-query ``query_timeout``.

    A timed-out statement keeps its admission slot until the engine
    thread actually finishes — the deadline bounds the *caller's* wait,
    and capacity accounting stays truthful.
    """

    def __init__(self, database, host: str = "127.0.0.1", port: int = 0,
                 unix_path: str | None = None, max_inflight: int = 8,
                 max_backlog: int = 32, query_timeout: float | None = None,
                 session_factory=None):
        self.database = database
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.query_timeout = query_timeout
        self.gate = AdmissionGate(max_inflight, max_backlog)
        self._session_factory = session_factory or database.session
        self._pool = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-serve"
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections = 0

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        if self.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._serve_connection, path=self.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._serve_connection, host=self.host, port=self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=False)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def __aenter__(self) -> "ReproServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def address(self):
        """Client-side connect address: ``(host, port)`` or the unix
        socket path."""
        if self.unix_path is not None:
            return self.unix_path
        return (self.host, self.port)

    # -- connection handling -----------------------------------------------
    async def _serve_connection(self, reader, writer) -> None:
        self._connections += 1
        session = None
        try:
            session = await self._handshake(reader, writer)
            if session is None:
                return
            while True:
                request = await read_frame(reader)
                if request is None or request.get("op") == "close":
                    if request is not None:
                        write_frame(
                            writer, {"id": request.get("id"), "ok": True}
                        )
                        await writer.drain()
                    return
                reply = await self._dispatch(session, request)
                write_frame(writer, reply)
                await writer.drain()
        except (ConnectionError, ProtocolError, asyncio.IncompleteReadError):
            pass  # client vanished or spoke garbage: drop the connection
        finally:
            if session is not None:
                # Non-blocking (pool shutdown with wait=False), and must
                # run even when this task is being cancelled at server
                # stop — so no await here.
                session.close()
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _handshake(self, reader, writer):
        request = await read_frame(reader)
        if request is None:
            return None
        if request.get("op") != "hello":
            write_frame(writer, {
                "id": request.get("id"), "ok": False,
                "error": error_to_wire(
                    ProtocolError("expected a hello frame")
                ),
            })
            await writer.drain()
            return None
        try:
            session = self._session_factory(**request.get("options") or {})
        except Exception as exc:
            write_frame(writer, {
                "id": request.get("id"), "ok": False,
                "error": error_to_wire(exc),
            })
            await writer.drain()
            return None
        write_frame(writer, {
            "id": request.get("id"), "ok": True,
            "server": {
                "max_inflight": self.gate.max_inflight,
                "max_backlog": self.gate.max_backlog,
                "query_timeout": self.query_timeout,
            },
        })
        await writer.drain()
        return session

    async def _dispatch(self, session, request: dict) -> dict:
        request_id = request.get("id")
        op = request.get("op")
        sql = request.get("sql")
        if op not in ("execute", "explain") or not isinstance(sql, str):
            return {
                "id": request_id, "ok": False,
                "error": error_to_wire(
                    ProtocolError(f"malformed request op={op!r}")
                ),
            }
        try:
            payload = await self._run_gated(session, op, sql)
        except Exception as exc:
            return {"id": request_id, "ok": False, "error": error_to_wire(exc)}
        payload["id"] = request_id
        payload["ok"] = True
        return payload

    async def _run_gated(self, session, op: str, sql: str) -> dict:
        """Admission gate + thread-pool execution + query deadline.

        The deadline covers queue wait *and* execution: an admitted
        query stuck behind a writer lock times out just like one stuck
        in the backlog.
        """
        loop = asyncio.get_running_loop()

        async def admit_and_run():
            await self.gate.acquire()
            future = loop.run_in_executor(
                self._pool, self._run_statement, session, op, sql
            )
            # Release only when the engine thread is truly done — on
            # timeout the future keeps running, and its slot must stay
            # occupied until then (also swallow its late exception).
            future.add_done_callback(
                lambda f: (self.gate.release(), f.cancelled() or f.exception())
            )
            return await asyncio.shield(future)

        try:
            return await asyncio.wait_for(admit_and_run(), self.query_timeout)
        except asyncio.TimeoutError:
            raise QueryTimeout(
                f"query exceeded the {self.query_timeout}s deadline"
            ) from None

    def _run_statement(self, session, op: str, sql: str) -> dict:
        if op == "explain":
            return {"kind": "text", "value": session.explain(sql)}
        result = session.execute(sql)
        if isinstance(result, int):
            return {"kind": "rowcount", "value": result}
        return {"kind": "result", "result": encode_result(result)}
