"""Wire protocol shared by :mod:`repro.server` and :mod:`repro.client`.

Framing is length-prefixed JSON: each message is a 4-byte big-endian
payload length followed by that many bytes of UTF-8 JSON.  JSON keeps
the protocol inspectable; the one thing JSON must **not** touch is the
numeric column data — a float that round-trips through decimal text
can change bits, which would defeat the entire point of a reproducible
server.  Numeric columns therefore travel as base64 of the raw
little-endian array bytes plus the dtype string, and are reassembled
with ``np.frombuffer`` — bit-exact by construction.  Object (string)
columns travel as plain JSON arrays.

Requests::

    {"id": 1, "op": "hello", "options": {"sum_mode": "repro", ...}}
    {"id": 2, "op": "execute", "sql": "SELECT ..."}
    {"id": 3, "op": "explain", "sql": "SELECT ..."}
    {"id": 4, "op": "close"}

Replies carry the request ``id`` and either ``"ok": true`` with a
``result`` / ``rowcount`` / ``text`` payload, or ``"ok": false`` with
the typed-error envelope of :func:`repro.errors.error_to_wire`, which
the client rehydrates into the same exception class
(:class:`~repro.errors.QueryTimeout` stays a ``QueryTimeout`` across
the wire, not a stringly-typed RuntimeError).
"""

from __future__ import annotations

import base64
import json
import re
import struct

import numpy as np

from ..errors import ConnectionClosed, ProtocolError

__all__ = [
    "MAX_FRAME_BYTES",
    "read_frame",
    "write_frame",
    "recv_frame",
    "send_frame",
    "encode_result",
    "decode_result",
    "type_to_wire",
    "type_from_wire",
]

#: Frame size cap — a corrupt or hostile length prefix must not make
#: either side try to allocate gigabytes.
MAX_FRAME_BYTES = 512 * 1024 * 1024

_HEADER = struct.Struct(">I")


def _check_length(length: int) -> int:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return length


# -- asyncio side (server) -------------------------------------------------

async def read_frame(reader) -> dict | None:
    """Read one message from an ``asyncio.StreamReader``; ``None`` at
    orderly EOF between frames."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise ProtocolError("connection closed mid-frame") from None
        return None
    length = _check_length(_HEADER.unpack(header)[0])
    payload = await reader.readexactly(length)
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None


def write_frame(writer, message: dict) -> None:
    """Queue one message on an ``asyncio.StreamWriter``."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    writer.write(_HEADER.pack(len(payload)) + payload)


# -- blocking-socket side (client) -----------------------------------------

def recv_frame(sock) -> dict:
    """Read one message from a blocking socket."""
    header = _recv_exactly(sock, _HEADER.size)
    length = _check_length(_HEADER.unpack(header)[0])
    payload = _recv_exactly(sock, length)
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None


def send_frame(sock, message: dict) -> None:
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exactly(sock, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionClosed("server closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- result codec ----------------------------------------------------------

def type_to_wire(sql_type) -> str | None:
    """A :class:`~repro.engine.types.SqlType` as its SQL name (the
    parenthesized forms carry their arguments: ``DECIMAL(18,2)``)."""
    return None if sql_type is None else sql_type.name


_TYPE_NAME = re.compile(r"([A-Za-z]+)(?:\((\d+)(?:,(\d+))?\))?\Z")


def type_from_wire(name: str | None):
    if name is None:
        return None
    from ..engine.types import type_from_name

    match = _TYPE_NAME.match(name)
    if match is None:
        raise ProtocolError(f"unparseable wire type {name!r}")
    args = tuple(int(g) for g in match.groups()[1:] if g is not None)
    return type_from_name(match.group(1), args)


def _encode_column(arr: np.ndarray) -> dict:
    arr = np.ascontiguousarray(arr)
    if arr.dtype.kind == "O":
        values = []
        for v in arr.tolist():
            if v is None or isinstance(v, (str, int, float, bool)):
                values.append(v)
            else:
                values.append(str(v))
        return {"kind": "object", "values": values}
    # Force little-endian so the dtype string is platform-independent.
    if arr.dtype.byteorder == ">":
        arr = arr.astype(arr.dtype.newbyteorder("<"))
    return {
        "kind": "numeric",
        "dtype": arr.dtype.str,
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _decode_column(col: dict) -> np.ndarray:
    if col["kind"] == "object":
        out = np.empty(len(col["values"]), dtype=object)
        out[:] = col["values"]
        return out
    raw = base64.b64decode(col["data"])
    return np.frombuffer(raw, dtype=np.dtype(col["dtype"])).copy()


def encode_result(result) -> dict:
    """An engine ``QueryResult`` as a wire payload (bit-exact for
    numeric columns)."""
    return {
        "names": list(result.names),
        "types": [type_to_wire(t) for t in result.types],
        "columns": [_encode_column(arr) for arr in result.arrays],
    }


def decode_result(payload: dict):
    """Rebuild a ``QueryResult`` from :func:`encode_result` output."""
    from ..engine.executor import QueryResult

    return QueryResult(
        list(payload["names"]),
        [_decode_column(col) for col in payload["columns"]],
        [type_from_wire(name) for name in payload["types"]],
    )
