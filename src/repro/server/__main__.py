"""``python -m repro.server`` — stand up a reproducible SQL server.

    python -m repro.server --port 7474 --sum-mode repro --workers 4
    python -m repro.server --unix /tmp/repro.sock --init schema.sql
    python -m repro.server --data-dir /var/lib/repro --port 7474

``--init`` runs a SQL script (one statement per ``;``) against the
database before accepting connections — the usual way to load a schema
and seed data for a demo or benchmark.

``--data-dir`` makes the served database durable: every committed
mutation hits the write-ahead log before its acknowledgement goes back
over the wire, and a SIGTERM shuts the server down *cleanly* — stop
accepting, drain, checkpoint, release the directory lock — so the next
start recovers instantly from the image instead of replaying the log.
A ``kill -9`` is also safe (that is the point of the WAL); it just
recovers through replay.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal

from ..engine import Database
from . import ReproServer


def _parse_args(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a repro database over TCP or a unix socket.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7474)
    parser.add_argument("--unix", default=None, metavar="PATH",
                        help="serve on a unix socket instead of TCP")
    parser.add_argument("--data-dir", default=None, metavar="DIR",
                        help="durable data directory (checkpoint + WAL); "
                             "omit for an in-memory database")
    parser.add_argument("--checkpoint-interval", type=float, default=60.0,
                        metavar="SECONDS",
                        help="background WAL compaction cadence "
                             "(with --data-dir)")
    parser.add_argument("--sum-mode", default="repro",
                        choices=("ieee", "repro", "repro_buffered", "sorted"),
                        help="default SUM semantics for new sessions")
    parser.add_argument("--workers", type=int, default=1,
                        help="default intra-query worker count")
    parser.add_argument("--max-inflight", type=int, default=8,
                        help="statements executing concurrently")
    parser.add_argument("--max-backlog", type=int, default=32,
                        help="statements allowed to wait for a slot")
    parser.add_argument("--query-timeout", type=float, default=None,
                        metavar="SECONDS", help="per-statement deadline")
    parser.add_argument("--init", default=None, metavar="SCRIPT.sql",
                        help="SQL script to run before serving")
    return parser.parse_args(argv)


def _run_init_script(db: Database, path: str) -> int:
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    ran = 0
    session = db.session()
    for statement in text.split(";"):
        statement = statement.strip()
        if statement:
            session.execute(statement)
            ran += 1
    return ran


async def _amain(args) -> None:
    db = Database(
        sum_mode=args.sum_mode, workers=args.workers,
        path=args.data_dir,
        checkpoint_interval=args.checkpoint_interval,
    )
    try:
        if args.init:
            ran = _run_init_script(db, args.init)
            print(f"init: ran {ran} statements from {args.init}")
        server = ReproServer(
            db, host=args.host, port=args.port, unix_path=args.unix,
            max_inflight=args.max_inflight, max_backlog=args.max_backlog,
            query_timeout=args.query_timeout,
        )
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signal.SIGTERM, stop.set)
            loop.add_signal_handler(signal.SIGINT, stop.set)
        where = server.address if args.unix else "%s:%d" % server.address
        durable = f", data_dir={args.data_dir}" if args.data_dir else ""
        print(f"serving on {where} (sum_mode={args.sum_mode}, "
              f"max_inflight={args.max_inflight}{durable})")
        serve = asyncio.ensure_future(server.serve_forever())
        waiter = asyncio.ensure_future(stop.wait())
        try:
            await asyncio.wait(
                [serve, waiter], return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            waiter.cancel()
            serve.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await serve
            await server.stop()
            if args.data_dir:
                # Sealed shutdown: image the final state so the next
                # start recovers from the checkpoint, not a log replay.
                db.checkpoint()
                print("checkpoint written, data directory sealed")
    finally:
        db.close()


def main(argv=None) -> None:
    try:
        asyncio.run(_amain(_parse_args(argv)))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
