"""``python -m repro.server`` — stand up a reproducible SQL server.

    python -m repro.server --port 7474 --sum-mode repro --workers 4
    python -m repro.server --unix /tmp/repro.sock --init schema.sql

``--init`` runs a SQL script (one statement per ``;``) against the
database before accepting connections — the usual way to load a schema
and seed data for a demo or benchmark.
"""

from __future__ import annotations

import argparse
import asyncio

from ..engine import Database
from . import ReproServer


def _parse_args(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a repro database over TCP or a unix socket.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7474)
    parser.add_argument("--unix", default=None, metavar="PATH",
                        help="serve on a unix socket instead of TCP")
    parser.add_argument("--sum-mode", default="repro",
                        choices=("ieee", "repro", "repro_buffered", "sorted"),
                        help="default SUM semantics for new sessions")
    parser.add_argument("--workers", type=int, default=1,
                        help="default intra-query worker count")
    parser.add_argument("--max-inflight", type=int, default=8,
                        help="statements executing concurrently")
    parser.add_argument("--max-backlog", type=int, default=32,
                        help="statements allowed to wait for a slot")
    parser.add_argument("--query-timeout", type=float, default=None,
                        metavar="SECONDS", help="per-statement deadline")
    parser.add_argument("--init", default=None, metavar="SCRIPT.sql",
                        help="SQL script to run before serving")
    return parser.parse_args(argv)


def _run_init_script(db: Database, path: str) -> int:
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    ran = 0
    session = db.session()
    for statement in text.split(";"):
        statement = statement.strip()
        if statement:
            session.execute(statement)
            ran += 1
    return ran


async def _amain(args) -> None:
    db = Database(sum_mode=args.sum_mode, workers=args.workers)
    if args.init:
        ran = _run_init_script(db, args.init)
        print(f"init: ran {ran} statements from {args.init}")
    server = ReproServer(
        db, host=args.host, port=args.port, unix_path=args.unix,
        max_inflight=args.max_inflight, max_backlog=args.max_backlog,
        query_timeout=args.query_timeout,
    )
    await server.start()
    where = server.address if args.unix else "%s:%d" % server.address
    print(f"serving on {where} (sum_mode={args.sum_mode}, "
          f"max_inflight={args.max_inflight})")
    await server.serve_forever()


def main(argv=None) -> None:
    try:
        asyncio.run(_amain(_parse_args(argv)))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
