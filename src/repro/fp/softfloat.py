"""Software floating-point arithmetic with arbitrary mantissa width.

The paper develops its intuition on small "toy" formats: an ``m = 2``
format with truncation in the associativity example of Section II-B and
an ``m = 4`` format in the worked RSUM example of Figure 2.  This module
implements exact software floating-point values over any
:class:`~repro.fp.formats.FloatFormat` so those examples (and the
property tests) can be executed literally.

Values are held as exact :class:`fractions.Fraction` objects that are
*guaranteed representable* in their format; the only place rounding
happens is :func:`round_to_format`, which implements round-to-nearest-
even (IEEE default) and truncation (the paper's toy example).  Because
the representation is exact, the tests can cross-check native IEEE
arithmetic bit-for-bit against this implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Union

from .formats import BINARY64, FloatFormat

__all__ = [
    "RoundingMode",
    "NEAREST_EVEN",
    "TRUNCATE",
    "round_to_format",
    "SoftFloat",
]

Real = Union[int, float, Fraction]


class RoundingMode:
    """Marker class for rounding modes (see module docstring)."""

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RoundingMode({self.name})"


NEAREST_EVEN = RoundingMode("nearest-even")
TRUNCATE = RoundingMode("truncate")


def _to_fraction(value: Real) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if math.isinf(value) or math.isnan(value):
        raise ValueError(f"cannot convert non-finite {value!r} to Fraction")
    return Fraction(value)


def round_to_format(
    value: Real,
    fmt: FloatFormat = BINARY64,
    mode: RoundingMode = NEAREST_EVEN,
) -> Fraction:
    """The paper's rounding function ``rd``: map a real to format ``fmt``.

    Returns the rounded value as an exact Fraction.  Overflow raises
    ``OverflowError`` (the toy examples never overflow; the IEEE paths
    in :mod:`repro.core` use native arithmetic where overflow produces
    infinities instead).  Subnormal results are rounded with the reduced
    precision IEEE prescribes.
    """
    frac = _to_fraction(value)
    if frac == 0:
        return Fraction(0)
    sign = -1 if frac < 0 else 1
    mag = abs(frac)

    # Exponent of the infinitely precise value: 2**e <= mag < 2**(e+1).
    e = _floor_log2(mag)

    # Quantum the result must be a multiple of.  Below the normal range
    # the quantum freezes at 2**(E_min - m) (gradual underflow).
    quantum_exp = max(e, fmt.min_exponent) - fmt.mantissa_bits
    quantum = Fraction(2) ** quantum_exp

    steps = mag / quantum
    lower = steps.numerator // steps.denominator
    remainder = steps - lower

    if mode is TRUNCATE:
        rounded_steps = lower
    else:  # round to nearest, ties to even
        if remainder > Fraction(1, 2):
            rounded_steps = lower + 1
        elif remainder < Fraction(1, 2):
            rounded_steps = lower
        else:
            rounded_steps = lower if lower % 2 == 0 else lower + 1

    result = sign * rounded_steps * quantum
    if result != 0:
        result_exp = _floor_log2(abs(result))
        if result_exp > fmt.max_exponent:
            raise OverflowError(
                f"{float(value)!r} overflows {fmt.name} "
                f"(exponent {result_exp} > {fmt.max_exponent})"
            )
    return result


def _floor_log2(mag: Fraction) -> int:
    """Exact ``floor(log2(mag))`` for a positive Fraction."""
    if mag <= 0:
        raise ValueError("argument must be positive")
    e = mag.numerator.bit_length() - mag.denominator.bit_length()
    # e is now floor(log2) up to an off-by-one; fix up exactly.
    if Fraction(2) ** e > mag:
        e -= 1
    elif Fraction(2) ** (e + 1) <= mag:
        e += 1
    return e


@dataclass(frozen=True)
class SoftFloat:
    """A representable value in a software floating-point format.

    Arithmetic rounds after every operation, exactly as hardware would:
    ``a + b`` is the paper's ``a (+) b = rd(a + b)``.
    """

    fmt: FloatFormat
    frac: Fraction
    mode: RoundingMode = NEAREST_EVEN

    @classmethod
    def from_real(
        cls,
        value: Real,
        fmt: FloatFormat = BINARY64,
        mode: RoundingMode = NEAREST_EVEN,
    ) -> "SoftFloat":
        """Round an arbitrary real into the format (entry point for literals)."""
        return cls(fmt, round_to_format(value, fmt, mode), mode)

    def __post_init__(self):
        rounded = round_to_format(self.frac, self.fmt, TRUNCATE)
        if rounded != self.frac:
            raise ValueError(
                f"{self.frac} is not representable in {self.fmt.name}"
            )

    # -- arithmetic (each op rounds, like hardware) ---------------------
    def _wrap(self, real: Fraction) -> "SoftFloat":
        return SoftFloat(self.fmt, round_to_format(real, self.fmt, self.mode), self.mode)

    def __add__(self, other: "SoftFloat") -> "SoftFloat":
        self._check(other)
        return self._wrap(self.frac + other.frac)

    def __sub__(self, other: "SoftFloat") -> "SoftFloat":
        self._check(other)
        return self._wrap(self.frac - other.frac)

    def __neg__(self) -> "SoftFloat":
        return SoftFloat(self.fmt, -self.frac, self.mode)

    def _check(self, other: "SoftFloat") -> None:
        if other.fmt is not self.fmt:
            raise TypeError(
                f"mixed formats: {self.fmt.name} vs {other.fmt.name}"
            )

    # -- paper §III-A quantities ----------------------------------------
    def ufp(self) -> Fraction:
        """Unit in the first place (exact)."""
        if self.frac == 0:
            raise ValueError("ufp undefined for zero")
        return Fraction(2) ** _floor_log2(abs(self.frac))

    def ulp(self) -> Fraction:
        """Unit in the last place in this format (exact)."""
        if self.frac == 0:
            raise ValueError("ulp undefined for zero")
        return self.ufp() / (Fraction(2) ** self.fmt.mantissa_bits)

    # -- conversions ------------------------------------------------------
    def __float__(self) -> float:
        return float(self.frac)

    def exact(self) -> Fraction:
        """The exact value (no rounding: SoftFloats are representable)."""
        return self.frac

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SoftFloat({float(self.frac)!r}, {self.fmt.name})"
