"""Bit-level helpers for IEEE floating-point values.

These implement the quantities the paper defines in Section III-A:

* ``ufp(x)`` — *unit in the first place*: the value of the leading
  mantissa bit.  For ``x = M * 2**E`` with ``M`` in ``[1, 2)``,
  ``ufp(x) = 2**E``.
* ``ulp(x)`` — *unit in the last place*: the value of the trailing
  mantissa bit, ``ulp(x) = 2**(E - m)`` for an ``m``-bit mantissa.

Both are defined per *format*, because the core algorithms run on
binary32 and binary64 (and, through :mod:`repro.fp.softfloat`, on toy
formats).  All helpers are exact: they use ``math.frexp`` / ``math.ldexp``
rather than logarithms, so no rounding can leak in.
"""

from __future__ import annotations

import math
import struct

import numpy as np

from .formats import BINARY32, BINARY64, FloatFormat

__all__ = [
    "exponent",
    "ufp",
    "ulp",
    "ulp_at",
    "is_multiple_of",
    "float_to_bits",
    "bits_to_float",
    "float32_to_bits",
    "bits_to_float32",
    "same_bits",
    "exact_pow2",
]


def exponent(x: float) -> int:
    """Return ``E`` such that ``|x| = M * 2**E`` with ``M`` in ``[1, 2)``.

    Exact for every finite non-zero float, including subnormals.
    Raises ``ValueError`` for zero, infinity, or NaN, for which the
    exponent is not defined.
    """
    if x == 0.0 or math.isinf(x) or math.isnan(x):
        raise ValueError(f"exponent undefined for {x!r}")
    _, e = math.frexp(abs(x))  # frexp: |x| = f * 2**e, f in [0.5, 1)
    return e - 1


def ufp(x: float) -> float:
    """Unit in the first place: ``2**exponent(x)`` (Goldberg / paper §III-A)."""
    return math.ldexp(1.0, exponent(x))


def ulp(x: float, fmt: FloatFormat = BINARY64) -> float:
    """Unit in the last place of ``x`` in format ``fmt``: ``2**(E - m)``.

    Note this is the ulp of ``x``'s *binade*, i.e. the spacing of
    representable numbers around ``x``, assuming ``x`` is normal.
    """
    return math.ldexp(1.0, exponent(x) - fmt.mantissa_bits)


def ulp_at(exp: int, fmt: FloatFormat = BINARY64) -> float:
    """ulp of the binade with exponent ``exp``: ``2**(exp - m)``."""
    return math.ldexp(1.0, exp - fmt.mantissa_bits)


def is_multiple_of(x: float, unit: float) -> bool:
    """Exact check that ``x`` is an integer multiple of ``unit``.

    Used throughout the tests to verify error-free transformation
    invariants (contributions must be multiples of the extractor ulp).
    Computed with :class:`fractions.Fraction`, so there is no rounding.
    """
    from fractions import Fraction

    if x == 0.0:
        return True
    if unit == 0.0:
        return False
    ratio = Fraction(x) / Fraction(unit)
    return ratio.denominator == 1


def float_to_bits(x: float) -> int:
    """Raw IEEE binary64 bit pattern of ``x`` as an unsigned 64-bit int."""
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def bits_to_float(bits: int) -> float:
    """Inverse of :func:`float_to_bits`."""
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


def float32_to_bits(x) -> int:
    """Raw IEEE binary32 bit pattern as an unsigned 32-bit int."""
    return struct.unpack("<I", struct.pack("<f", float(np.float32(x))))[0]


def bits_to_float32(bits: int) -> np.float32:
    """Inverse of :func:`float32_to_bits`."""
    return np.float32(struct.unpack("<f", struct.pack("<I", bits))[0])


def same_bits(a, b) -> bool:
    """Bit-identity of two floats (distinguishes -0.0 from +0.0, NaNs by payload).

    This is the paper's definition of reproducibility: "the aggregate of
    each group has exactly the same bit pattern for any execution".
    """
    if isinstance(a, np.float32) or isinstance(b, np.float32):
        return float32_to_bits(np.float32(a)) == float32_to_bits(np.float32(b))
    return float_to_bits(float(a)) == float_to_bits(float(b))


def exact_pow2(exp: int) -> float:
    """``2**exp`` as a float, exact over the binary64 exponent range."""
    return math.ldexp(1.0, exp)
