"""Floating-point format descriptors.

The paper (Section II-B) reasons about floating-point numbers as
``x = M * 2**E`` with mantissa ``M`` in ``[1, 2)`` and an ``m``-bit
mantissa.  Everything in :mod:`repro.core` is parameterised over such a
format so the same code runs on IEEE binary32, binary64, and the small
"toy" formats the paper uses in its worked examples (an ``m = 2`` format
in Section II-B and an ``m = 4`` format in Figure 2).

A :class:`FloatFormat` is a *description*; actual arithmetic is done
either natively (for the IEEE formats, through Python floats and NumPy
scalars) or through :mod:`repro.fp.softfloat` (for any format).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FloatFormat",
    "BINARY16",
    "BINARY32",
    "BINARY64",
    "TOY_M2",
    "TOY_M4",
    "format_for_dtype",
    "format_by_name",
]


@dataclass(frozen=True)
class FloatFormat:
    """Description of a binary floating-point format.

    Attributes
    ----------
    name:
        Human-readable identifier (``"binary64"``, ``"toy-m4"``, ...).
    mantissa_bits:
        The paper's ``m``: number of bits *after* the leading one.  A
        value ``x = M * 2**E`` with ``M`` in ``[1, 2)`` stores ``m``
        fractional mantissa bits, i.e. precision ``p = m + 1``.
    min_exponent:
        Smallest normal exponent ``E_min`` (IEEE convention: binary64
        has ``E_min = -1022``).
    max_exponent:
        Largest normal exponent ``E_max`` (binary64: 1023).
    dtype:
        NumPy dtype carrying this format natively, or ``None`` when the
        format is software-only (toy formats).
    """

    name: str
    mantissa_bits: int
    min_exponent: int
    max_exponent: int
    dtype: np.dtype | None = None

    @property
    def precision(self) -> int:
        """Total significand precision ``p = m + 1`` (IEEE counts the hidden bit)."""
        return self.mantissa_bits + 1

    @property
    def machine_epsilon(self) -> float:
        """Unit roundoff ``eps = 2**-m`` (spacing of floats in ``[1, 2)``)."""
        return 2.0 ** (-self.mantissa_bits)

    @property
    def max_value(self) -> float:
        """Largest finite value representable in the format."""
        return (2.0 - self.machine_epsilon) * 2.0**self.max_exponent

    @property
    def min_normal(self) -> float:
        """Smallest positive normal value."""
        return 2.0**self.min_exponent

    @property
    def itemsize(self) -> int:
        """Storage width in bytes (used by the cache-footprint model)."""
        if self.dtype is not None:
            return self.dtype.itemsize
        # Toy formats have no machine representation; charge one byte
        # per 8 bits of sign+exponent+mantissa, rounded up.
        bits = 1 + self.mantissa_bits + 8
        return (bits + 7) // 8

    def representable(self, value: float) -> bool:
        """Return True if ``value`` is exactly representable in this format.

        Zeroes and infinities count as representable; NaN does not (it
        is a payload family, not a single value).
        """
        import math

        if value == 0.0 or math.isinf(value):
            return True
        if math.isnan(value):
            return False
        mantissa, exponent = math.frexp(abs(value))  # mantissa in [0.5, 1)
        exp = exponent - 1  # convention: M in [1, 2)
        if exp > self.max_exponent:
            return False
        # Subnormals lose one mantissa bit per exponent step below E_min.
        effective_bits = self.mantissa_bits
        if exp < self.min_exponent:
            effective_bits -= self.min_exponent - exp
            if effective_bits < 0:
                return False
        scaled = mantissa * 2.0 ** (effective_bits + 1)
        return scaled == int(scaled)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


BINARY16 = FloatFormat("binary16", 10, -14, 15, np.dtype(np.float16))
BINARY32 = FloatFormat("binary32", 23, -126, 127, np.dtype(np.float32))
BINARY64 = FloatFormat("binary64", 52, -1022, 1023, np.dtype(np.float64))

#: Toy format of the paper's Section II-B associativity example (m = 2).
TOY_M2 = FloatFormat("toy-m2", 2, -64, 64)

#: Toy format used in Figure 2's worked RSUM example (m = 4).
TOY_M4 = FloatFormat("toy-m4", 4, -64, 64)

_BY_DTYPE = {
    np.dtype(np.float16): BINARY16,
    np.dtype(np.float32): BINARY32,
    np.dtype(np.float64): BINARY64,
}

_BY_NAME = {
    fmt.name: fmt for fmt in (BINARY16, BINARY32, BINARY64, TOY_M2, TOY_M4)
}
_BY_NAME.update(
    {
        "float": BINARY32,
        "double": BINARY64,
        "half": BINARY16,
        "float16": BINARY16,
        "float32": BINARY32,
        "float64": BINARY64,
    }
)


def format_for_dtype(dtype) -> FloatFormat:
    """Return the :class:`FloatFormat` matching a NumPy dtype.

    Raises ``KeyError`` for non-float dtypes.
    """
    return _BY_DTYPE[np.dtype(dtype)]


def format_by_name(name: str) -> FloatFormat:
    """Look up a format by name; accepts SQL-ish aliases (``"double"``)."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown float format {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
