"""Floating-point substrate: formats, bit-level helpers, software floats,
and fixed-point DECIMAL types.

This package contains everything the reproducible-summation core needs
to reason about number representations, independent of any database
machinery.
"""

from .decimal_fixed import (
    DECIMAL9,
    DECIMAL18,
    DECIMAL38,
    DecimalColumn,
    DecimalOverflowError,
    DecimalType,
    DecimalValue,
)
from .formats import (
    BINARY16,
    BINARY32,
    BINARY64,
    TOY_M2,
    TOY_M4,
    FloatFormat,
    format_by_name,
    format_for_dtype,
)
from .ieee import (
    bits_to_float,
    bits_to_float32,
    exact_pow2,
    exponent,
    float32_to_bits,
    float_to_bits,
    is_multiple_of,
    same_bits,
    ufp,
    ulp,
    ulp_at,
)
from .softfloat import NEAREST_EVEN, TRUNCATE, RoundingMode, SoftFloat, round_to_format

__all__ = [
    "BINARY16",
    "BINARY32",
    "BINARY64",
    "TOY_M2",
    "TOY_M4",
    "FloatFormat",
    "format_by_name",
    "format_for_dtype",
    "exponent",
    "ufp",
    "ulp",
    "ulp_at",
    "is_multiple_of",
    "float_to_bits",
    "bits_to_float",
    "float32_to_bits",
    "bits_to_float32",
    "same_bits",
    "exact_pow2",
    "RoundingMode",
    "NEAREST_EVEN",
    "TRUNCATE",
    "SoftFloat",
    "round_to_format",
    "DecimalType",
    "DecimalValue",
    "DecimalColumn",
    "DecimalOverflowError",
    "DECIMAL9",
    "DECIMAL18",
    "DECIMAL38",
]
