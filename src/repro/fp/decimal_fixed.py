"""Fixed-point DECIMAL(p) arithmetic.

The paper's evaluation (Figures 7 and 10) compares the reproducible
floating-point types against ``DECIMAL(p)`` columns, "implemented as
built-in integers of size 32, 64, and 128 bit for p = 9, 19, 38" —
the classic decimal-scaled-binary representation.  Summing DECIMALs is
reproducible as long as no overflow occurs (Section II-C), which is why
they are the natural baseline: the interesting question is the *cost*
of the wider integer widths, not their semantics.

This module provides:

* :class:`DecimalType` — a precision/scale descriptor mapping to a
  storage width exactly like the paper (<=9 digits: 32-bit, <=18: 64-bit,
  <=38: 128-bit).
* :class:`DecimalValue` — a scalar fixed-point value.
* :class:`DecimalColumn` — a columnar container with vectorised
  summation (NumPy int64 for widths up to 64 bits; exact Python ints —
  our stand-in for ``__int128`` — beyond that), including overflow
  detection, since unchecked overflow is precisely what makes integer
  SUM non-reproducible for mixed-sign data (paper footnote 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

__all__ = [
    "DecimalOverflowError",
    "DecimalType",
    "DecimalValue",
    "DecimalColumn",
    "DECIMAL9",
    "DECIMAL18",
    "DECIMAL38",
]


class DecimalOverflowError(OverflowError):
    """Raised when a fixed-point operation exceeds its storage width."""


@dataclass(frozen=True)
class DecimalType:
    """DECIMAL(precision, scale) descriptor.

    ``precision`` is the total number of decimal digits, ``scale`` the
    number of digits after the decimal point.  Storage width follows the
    paper's mapping.
    """

    precision: int
    scale: int = 0

    def __post_init__(self):
        if not 1 <= self.precision <= 38:
            raise ValueError("precision must be in [1, 38]")
        if not 0 <= self.scale <= self.precision:
            raise ValueError("scale must be in [0, precision]")

    @property
    def storage_bits(self) -> int:
        """Paper §VI-A: 32/64/128-bit integers for p <= 9 / 18 / 38."""
        if self.precision <= 9:
            return 32
        if self.precision <= 18:
            return 64
        return 128

    @property
    def itemsize(self) -> int:
        return self.storage_bits // 8

    @property
    def max_unscaled(self) -> int:
        """Largest unscaled integer the storage width can hold."""
        return 2 ** (self.storage_bits - 1) - 1

    @property
    def name(self) -> str:
        if self.scale:
            return f"DECIMAL({self.precision},{self.scale})"
        return f"DECIMAL({self.precision})"

    # -- conversions ----------------------------------------------------
    def unscaled_from_real(self, value) -> int:
        """Quantise a real number onto this type's fixed-point grid."""
        scaled = Fraction(value) * 10**self.scale
        unscaled = round(scaled)
        self.check(unscaled)
        return int(unscaled)

    def real_from_unscaled(self, unscaled: int) -> Fraction:
        return Fraction(unscaled, 10**self.scale)

    def check(self, unscaled: int) -> int:
        if abs(unscaled) > self.max_unscaled:
            raise DecimalOverflowError(
                f"{unscaled} does not fit in {self.name} "
                f"({self.storage_bits}-bit storage)"
            )
        return unscaled

    def value(self, real) -> "DecimalValue":
        return DecimalValue(self, self.unscaled_from_real(real))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


DECIMAL9 = DecimalType(9, 2)
DECIMAL18 = DecimalType(18, 2)
DECIMAL38 = DecimalType(38, 2)


@dataclass(frozen=True)
class DecimalValue:
    """A scalar fixed-point value: ``unscaled * 10**-scale``."""

    dtype: DecimalType
    unscaled: int

    def __add__(self, other: "DecimalValue") -> "DecimalValue":
        if other.dtype != self.dtype:
            raise TypeError("mixed DECIMAL types")
        return DecimalValue(
            self.dtype, self.dtype.check(self.unscaled + other.unscaled)
        )

    def __neg__(self) -> "DecimalValue":
        return DecimalValue(self.dtype, -self.unscaled)

    def __float__(self) -> float:
        return float(self.dtype.real_from_unscaled(self.unscaled))

    def exact(self) -> Fraction:
        return self.dtype.real_from_unscaled(self.unscaled)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DecimalValue({float(self)}, {self.dtype.name})"


class DecimalColumn:
    """Columnar fixed-point storage with vectorised, checked summation."""

    def __init__(self, dtype: DecimalType, unscaled: np.ndarray | list):
        self.dtype = dtype
        if dtype.storage_bits <= 64:
            self.unscaled = np.asarray(unscaled, dtype=np.int64)
        else:
            # 128-bit lane: exact Python ints in an object array, our
            # portable stand-in for GCC's __int128 (paper footnote 9).
            self.unscaled = np.asarray(
                [int(v) for v in unscaled], dtype=object
            )

    @classmethod
    def from_reals(cls, dtype: DecimalType, values) -> "DecimalColumn":
        return cls(dtype, [dtype.unscaled_from_real(v) for v in values])

    def __len__(self) -> int:
        return len(self.unscaled)

    def sum_unscaled(self) -> int:
        """Exact, overflow-checked sum of the unscaled integers.

        The order of integer addition does not matter (it is exact),
        which is what makes DECIMAL summation reproducible — *if* the
        overflow check passes.
        """
        if self.dtype.storage_bits <= 64:
            total = int(np.sum(self.unscaled, dtype=object))
        else:
            total = sum(int(v) for v in self.unscaled)
        return self.dtype.check(total)

    def sum(self) -> DecimalValue:
        return DecimalValue(self.dtype, self.sum_unscaled())

    def group_sums(self, group_ids: np.ndarray, ngroups: int) -> list:
        """Per-group checked sums; returns a list of unscaled ints."""
        totals = [0] * ngroups
        if self.dtype.storage_bits <= 64:
            # bincount is exact for int64 inputs summed as float? No —
            # use add.at on an object accumulation via int64 partial
            # sums with a final overflow check, falling back to exact
            # Python ints when the partial sums could wrap.
            sums = np.zeros(ngroups, dtype=np.int64)
            with np.errstate(over="raise"):
                np.add.at(sums, group_ids, self.unscaled)
            totals = [int(v) for v in sums]
        else:
            for gid, v in zip(group_ids, self.unscaled):
                totals[gid] += int(v)
        for t in totals:
            self.dtype.check(t)
        return totals
