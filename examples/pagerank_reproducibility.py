"""The introduction's PageRank experiment.

Paper: "We ran PageRank on different permutations of a small web graph
with 900k pages.  We observed that, from one run to the next, the
ranks of about 10-20 pages would be different enough to swap ranks
with another page."

PageRank's inner loop is a GROUP BY SUM (sum incoming contributions
per page), so edge order leaks into the ranks under IEEE floats.  The
Google web graph is not shipped offline; we use a synthetic
scale-free graph (preferential attachment) — the effect is the same.

Run:  python examples/pagerank_reproducibility.py
"""

import numpy as np

from repro.workloads.pagerank import (
    pagerank,
    rank_swaps,
    synthetic_web_graph,
)


def main():
    npages = 5000
    print(f"Building a synthetic scale-free web graph ({npages} pages)...")
    src, dst = synthetic_web_graph(npages, out_degree=8, seed=1)
    print(f"{len(src)} edges")

    rng = np.random.default_rng(2)
    base_conv = pagerank(src, dst, npages, iterations=25, reproducible=False)
    base_repro = pagerank(src, dst, npages, iterations=25, reproducible=True)

    print("\nRe-running PageRank on 5 random edge permutations")
    print(f"{'permutation':>12} {'IEEE rank swaps':>16} {'repro rank swaps':>17}")
    total_conv = 0
    for i in range(5):
        order = rng.permutation(len(src))
        conv = pagerank(src[order], dst[order], npages, iterations=25,
                        reproducible=False)
        rep = pagerank(src[order], dst[order], npages, iterations=25,
                       reproducible=True)
        conv_swaps = rank_swaps(base_conv, conv)
        repro_swaps = rank_swaps(base_repro, rep)
        total_conv += conv_swaps
        print(f"{i:>12} {conv_swaps:>16} {repro_swaps:>17}")
        assert repro_swaps == 0

    print(
        f"\nIEEE floats: {total_conv} rank positions changed across runs "
        "of the SAME graph\n(the paper saw 10-20 pages swap on its 900k-page "
        "graph).\nReproducible summation: zero, bit-for-bit, every time."
    )


if __name__ == "__main__":
    main()
