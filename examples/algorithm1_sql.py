"""The paper's Algorithm 1, replayed on the bundled SQL engine.

    CREATE TABLE R (i int, f float);
    INSERT INTO R VALUES (1, 2.5e-16);
    INSERT INTO R VALUES (2, 0.999999999999999);
    INSERT INTO R VALUES (3, 2.5e-16);
    SELECT SUM(f) FROM R;  -- Returns 0.999999999999999
    UPDATE R SET i = i + 1 WHERE i = 2;
    -- 'f' is unchanged, but rows are physically reordered
    SELECT SUM(f) FROM R;  -- Returns 1.0!

The paper produced this on PostgreSQL 9.5.1; our engine implements the
same storage behaviour (UPDATE = mask old version + append new one),
so the effect reproduces exactly — and disappears under the
reproducible SUM.

Run:  python examples/algorithm1_sql.py
"""

from repro.engine import Database

STATEMENTS = [
    "CREATE TABLE R (i int, f double)",
    "INSERT INTO R VALUES (1, 2.5e-16)",
    "INSERT INTO R VALUES (2, 0.999999999999999)",
    "INSERT INTO R VALUES (3, 2.5e-16)",
]


def replay(sum_mode: str):
    db = Database(sum_mode=sum_mode)
    for sql in STATEMENTS:
        db.execute(sql)
    before = db.execute("SELECT SUM(f) FROM R").scalar()
    db.execute("UPDATE R SET i = i + 1 WHERE i = 2")
    after = db.execute("SELECT SUM(f) FROM R").scalar()
    return before, after


def main():
    print("Algorithm 1 (paper, Section I) on the bundled engine\n")

    before, after = replay("ieee")
    print("-- conventional IEEE SUM (sum_mode='ieee') --")
    print(f"SELECT SUM(f) before UPDATE: {before!r}")
    print(f"SELECT SUM(f) after  UPDATE: {after!r}")
    print(f"reproducible? {before == after}")
    print()

    before, after = replay("repro")
    print("-- reproducible SUM (sum_mode='repro') --")
    print(f"SELECT SUM(f) before UPDATE: {before!r}")
    print(f"SELECT SUM(f) after  UPDATE: {after!r}")
    print(f"reproducible? {before == after}")
    print()

    # The HAVING variant from the introduction: group membership flips.
    print("-- the HAVING misclassification (intro, footnote discussion) --")
    db = Database(sum_mode="ieee")
    db.execute("CREATE TABLE s (g int, f double)")
    db.execute("INSERT INTO s VALUES (1, 2.5e-16)")
    db.execute("INSERT INTO s VALUES (1, 0.999999999999999)")
    db.execute("INSERT INTO s VALUES (1, 2.5e-16)")
    threshold = 0.9999999999999996
    sql = f"SELECT g FROM s GROUP BY g HAVING SUM(f) >= {threshold!r}"
    first = len(db.execute(sql))
    db.execute("UPDATE s SET g = g WHERE f > 0.5")  # physical reorder only
    second = len(db.execute(sql))
    print(f"group qualifies before reorder: {bool(first)}")
    print(f"group qualifies after  reorder: {bool(second)}")
    print("(the same record appears in some runs but not others —")
    print(" the paper's misclassification example)")

    # RSUM(expr, L): the paper's proposed user-facing aggregate.
    print()
    print("-- RSUM(f, L): explicit precision control (Section V-D) --")
    db2 = Database(sum_mode="ieee")
    db2.execute("CREATE TABLE r (v double)")
    db2.execute("INSERT INTO r VALUES (1.0), (2.5e-16), (-1.0)")
    print(f"SUM(v)      = {db2.execute('SELECT SUM(v) FROM r').scalar()!r}")
    print(f"RSUM(v, 4)  = {db2.execute('SELECT RSUM(v, 4) FROM r').scalar()!r}")
    print("(RSUM with L=4 recovers the cancelled 2.5e-16 exactly)")


if __name__ == "__main__":
    main()
