"""Scientific data: wide dynamic range, cancellation, and the L knob.

Section II-C argues fixed-point DECIMALs cannot serve "measurements or
scientific data ... values of different orders of magnitude such as
those handled in machine learning".  This example aggregates exactly
that kind of data — per-sensor sums over values spanning ~60 binades
with heavy cancellation — and shows:

* DECIMAL cannot even represent the inputs (quantisation destroys
  them);
* IEEE sums differ run-to-run under reordering, by far more than the
  true per-group signal;
* the reproducible type gives identical bits every time, and raising
  L recovers the tiny true signal exactly.

Run:  python examples/scientific_aggregation.py
"""

import math

import numpy as np

import repro
from repro.analysis import fsum
from repro.fp.decimal_fixed import DECIMAL18, DecimalOverflowError


def make_sensor_data(rng, n, nsensors):
    """Cancelling field samples plus a tiny per-sensor drift."""
    keys = rng.integers(0, nsensors, size=n).astype(np.uint32)
    exponents = rng.uniform(-25, 25, size=n)
    base = rng.choice([-1.0, 1.0], size=n) * np.exp2(exponents)
    # Pair up large values so they cancel; the physics is in the drift.
    values = np.concatenate([base, -base])
    keys = np.concatenate([keys, keys])
    drift = rng.normal(scale=1e-9, size=values.size)
    return keys, values + drift


def main():
    rng = np.random.default_rng(0)
    nsensors = 32
    keys, values = make_sensor_data(rng, 50_000, nsensors)
    print(f"{values.size} samples, {nsensors} sensors")
    print(f"value magnitudes: {np.abs(values).min():.2e} .. "
          f"{np.abs(values).max():.2e}\n")

    # DECIMAL: not even representable.
    print("-- DECIMAL(18,2): the fixed-point non-option (paper §II-C) --")
    try:
        DECIMAL18.unscaled_from_real(float(np.abs(values).max()))
        quantised = DECIMAL18.unscaled_from_real(1e-9)
        print(f"a 1e-9 drift quantised to cents: {quantised} (signal erased)")
    except DecimalOverflowError as exc:
        print(f"overflow: {exc}")
    print()

    # IEEE: order-dependent garbage at this dynamic range.
    print("-- IEEE double GROUP BY SUM under physical reordering --")
    perm = rng.permutation(values.size)
    conv_a = repro.group_sum(keys, values, reproducible=False)
    conv_b = repro.group_sum(keys[perm], values[perm], reproducible=False)
    diffs = np.abs(conv_a.sums - conv_b.sums)
    print(f"max |difference| between two runs: {diffs.max():.3e}")
    print(f"bit-identical? {conv_a.bit_equal(conv_b)}\n")

    # Reproducible: identical bits, and accuracy scales with L.
    print("-- reproducible GROUP BY SUM, accuracy vs L --")
    exact = {
        int(k): fsum(values[keys == k]) for k in np.unique(keys)
    }
    for levels in (1, 2, 3, 4):
        result = repro.group_sum(keys, values, levels=levels)
        shuffled = repro.group_sum(keys[perm], values[perm], levels=levels)
        assert result.bit_equal(shuffled)
        worst = max(
            abs(float(result.as_dict()[k]) - exact[k]) for k in exact
        )
        print(f"L={levels}: bit-stable=True   max error vs exact: {worst:.3e}")

    print(
        "\nWith L>=3 the tiny drift survives ~50 binades of cancellation,"
        "\nreproducibly — the 'higher accuracy than IEEE numbers at"
        "\nessentially the same price' the paper points out."
    )


if __name__ == "__main__":
    main()
