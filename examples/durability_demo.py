"""Durability demo: populate, ``kill -9``, reopen, byte-compare.

A child process opens a durable database (``repro.open(path)``),
commits a seeded workload into ``obs``, writes the SHA-256 of the
committed query bits to a marker file, then keeps hammering a second
``junk`` table until the parent SIGKILLs it mid-append — the most
honest crash there is: no atexit, no flush, no goodbye.

The parent then reopens the directory and checks two things:

* the ``obs`` bits — everything the child *reported committed* —
  recover **byte-identically** (the marker hash matches);
* the torn ``junk`` tail recovers to a committed statement prefix
  (whatever the WAL fsynced before the kill), never half a row.

Run it:

    python examples/durability_demo.py
"""

from __future__ import annotations

import hashlib
import os
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

import repro

ROWS = 4_000
NGROUPS = 16
QUERY = "SELECT k, SUM(v) AS sv, COUNT(*) AS c FROM obs GROUP BY k ORDER BY k"
MARKER = "committed.sha256"


def digest(db) -> str:
    result = db.execute(QUERY)
    pieces = [("|".join(result.names)).encode()]
    for arr in result.arrays:
        arr = np.asarray(arr)
        pieces.append(
            repr(arr.tolist()).encode() if arr.dtype.kind == "O"
            else arr.tobytes()
        )
    return hashlib.sha256(b"\x1e".join(pieces)).hexdigest()


def child(path: str) -> None:
    rng = np.random.default_rng(20180418)
    db = repro.open(path, sum_mode="repro", checkpoint_interval=None)
    db.execute("CREATE TABLE obs (k INT, v DOUBLE)")
    obs = db.table("obs")
    keys = rng.integers(0, NGROUPS, size=ROWS)
    values = rng.choice([-1.0, 1.0], size=ROWS) * np.exp2(
        rng.uniform(-40, 40, size=ROWS)
    )
    for start in range(0, ROWS, 500):
        obs.insert_rows([
            {"k": int(k), "v": float(v)}
            for k, v in zip(keys[start:start + 500],
                            values[start:start + 500])
        ])
    db.checkpoint()  # half the story: image + WAL tail
    db.execute("DELETE FROM obs WHERE k = 3")
    db.execute("UPDATE obs SET v = v * 2.0 WHERE k = 5")

    # Everything above is committed (WAL fsyncs per statement); tell
    # the parent what the bits are, then invite the bullet.
    marker = os.path.join(path, MARKER)
    with open(marker + ".tmp", "w", encoding="utf-8") as handle:
        handle.write(digest(db))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(marker + ".tmp", marker)

    db.execute("CREATE TABLE junk (i INT)")
    i = 0
    while True:  # appending right up to the SIGKILL
        db.execute(f"INSERT INTO junk VALUES ({i})")
        i += 1


def main() -> None:
    path = tempfile.mkdtemp(prefix="repro-durability-demo-")
    proc = subprocess.Popen([sys.executable, __file__, "child", path])
    marker = os.path.join(path, MARKER)
    for _ in range(600):
        if os.path.exists(marker):
            break
        if proc.poll() is not None:
            raise SystemExit("child died before committing the workload")
        time.sleep(0.05)
    else:
        raise SystemExit("child never produced the committed marker")
    time.sleep(0.2)  # let it get some junk appends in
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait()
    print(f"child pid {proc.pid} SIGKILLed mid-append in {path}")

    with open(marker, encoding="utf-8") as handle:
        expected = handle.read().strip()
    db = repro.open(path, sum_mode="repro", checkpoint_interval=None)
    try:
        recovered = digest(db)
        junk_rows = db.execute("SELECT COUNT(*) FROM junk").scalar()
        print(f"committed digest  {expected}")
        print(f"recovered digest  {recovered}")
        print(f"junk rows recovered: {junk_rows} "
              f"(a committed prefix of the torn tail)")
        if recovered != expected:
            raise SystemExit("MISMATCH: recovery changed committed bits")
        print("OK: recovered database is byte-identical to the "
              "committed state at the moment of the kill")
    finally:
        db.close()


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "child":
        child(sys.argv[2])
    else:
        main()
