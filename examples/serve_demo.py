"""Serving demo: concurrent sessions, snapshot reads, identical bits.

One process, the whole story:

1. start a :class:`repro.server.ReproServer` on a loopback port;
2. eight network clients replay seeded INSERT/DELETE/UPDATE scripts
   *concurrently* against one shared table (disjoint keyspaces);
3. a reader pins a snapshot mid-barrage and proves its repeated reads
   are byte-stable while the writes commit around it;
4. the final served GROUP BY SUM is byte-compared against a serial
   replay of the same scripts — identical, because repro-mode
   aggregation is order-invariant and every statement is atomic.

Run:  PYTHONPATH=src python examples/serve_demo.py
"""

import asyncio
import threading

import numpy as np

import repro
from repro.engine import Database
from repro.server import ReproServer

N_CLIENTS = 8
STEPS = 25
QUERY = "SELECT k, SUM(v) AS sv, COUNT(*) AS c FROM obs GROUP BY k ORDER BY k"


def make_scripts():
    """Seeded per-client DML, each client confined to its own keys."""
    scripts = []
    for client_id in range(N_CLIENTS):
        rng = np.random.default_rng(2018 + client_id)
        ops = []
        for _ in range(STEPS):
            key = client_id * 10 + int(rng.integers(0, 4))
            value = float(
                rng.choice([-1.0, 1.0]) * np.exp2(rng.uniform(-30, 30))
            )
            roll = rng.random()
            if roll < 0.6:
                ops.append(f"INSERT INTO obs VALUES ({key}, {value!r})")
            elif roll < 0.8:
                ops.append(f"UPDATE obs SET v = v * 0.5 WHERE k = {key}")
            else:
                ops.append(f"DELETE FROM obs WHERE k = {key}")
        scripts.append(ops)
    return scripts


def result_bits(result) -> bytes:
    return b"".join(np.asarray(a).tobytes() for a in result.arrays)


def main():
    scripts = make_scripts()

    # -- serial reference ---------------------------------------------------
    ref_db = Database(sum_mode="repro")
    ref = ref_db.session()
    ref.execute("CREATE TABLE obs (k INT, v DOUBLE)")
    for step in range(STEPS):
        for ops in scripts:
            ref.execute(ops[step])
    expected = ref.execute(QUERY)

    # -- the served, concurrent version ------------------------------------
    db = Database(sum_mode="repro")
    db.execute("CREATE TABLE obs (k INT, v DOUBLE)")
    db.execute("INSERT INTO obs VALUES (999, 1.0)")  # a pre-barrage row
    db.execute("DELETE FROM obs WHERE k = 999")

    ready = threading.Event()
    stop = {}

    def serve():
        async def amain():
            async with ReproServer(db, max_inflight=8) as server:
                stop["loop"] = asyncio.get_running_loop()
                stop["event"] = asyncio.Event()
                stop["address"] = server.address
                ready.set()
                await stop["event"].wait()

        asyncio.run(amain())

    server_thread = threading.Thread(target=serve, daemon=True)
    server_thread.start()
    ready.wait()
    address = stop["address"]
    print(f"server up on {address[0]}:{address[1]}")

    # A pinned reader: snapshot taken *before* the barrage.
    reader = db.session()
    with reader.snapshot() as pinned:
        before = result_bits(reader.execute(QUERY))

        barrier = threading.Barrier(N_CLIENTS)

        def client(ops):
            with repro.connect(address, sum_mode="repro") as session:
                barrier.wait()
                for sql in ops:
                    session.execute(sql)

        threads = [
            threading.Thread(target=client, args=(ops,)) for ops in scripts
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # The barrage has fully committed — the pinned reader is blind.
        during = result_bits(reader.execute(QUERY))
        print(
            f"snapshot pinned at v{pinned}: reads byte-stable under the "
            f"barrage -> {during == before}"
        )
        assert during == before

    # Unpinned: a fresh network session sees the final state...
    with repro.connect(address, sum_mode="repro") as session:
        served = session.execute(QUERY)
    # ...and its bits equal the serial replay, column for column.
    identical = result_bits(served) == result_bits(expected)
    print(
        f"{N_CLIENTS} concurrent clients x {STEPS} statements: served "
        f"bits == serial replay bits -> {identical}"
    )
    assert identical
    print(f"final state: {len(served)} groups")
    for row in served.rows()[:5]:
        print("  ", row)

    stop["loop"].call_soon_threadsafe(stop["event"].set)
    server_thread.join(timeout=10)


if __name__ == "__main__":
    main()
