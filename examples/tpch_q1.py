"""End-to-end TPC-H Query 1 under the four SUM implementations.

The paper's Table IV experiment at laptop scale: load a generated
``lineitem``, run Q1 with conventional, reproducible (buffered),
and sorted SUM, time the operators, and check bit-stability across a
physical shuffle of the table.

Run:  python examples/tpch_q1.py [scale_factor]
"""

import struct
import sys
import time

from repro.engine import Database
from repro.tpch import Q1_SQL, load_lineitem, run_q1, shuffled_copy


def q1_bits(result):
    return [
        tuple(struct.pack("<d", x) for x in row[2:9]) for row in result.rows()
    ]


def main(scale_factor: float = 0.005):
    print(f"Generating lineitem at SF={scale_factor}...")
    reference_db = Database(sum_mode="ieee")
    nrows = load_lineitem(reference_db, scale_factor=scale_factor)
    print(f"{nrows} rows\n")

    print(Q1_SQL.strip(), "\n")

    timings = {}
    results = {}
    for mode in ("ieee", "repro", "repro_buffered", "sorted"):
        db = Database(sum_mode=mode, levels=2)
        db.catalog.add(reference_db.table("lineitem"))
        run_q1(db)  # warm-up
        started = time.perf_counter()
        results[mode] = run_q1(db)
        timings[mode] = time.perf_counter() - started

    print(f"{'mode':<16} {'total [ms]':>11} {'vs ieee':>8}")
    for mode, seconds in timings.items():
        print(
            f"{mode:<16} {seconds * 1e3:>11.1f} "
            f"{seconds / timings['ieee']:>7.2f}x"
        )

    print("\nQuery answer (repro mode):")
    rows = results["repro"].rows()
    header = results["repro"].names
    print("  " + "  ".join(header[:6]))
    for row in rows:
        print("  " + "  ".join(str(v)[:14] for v in row[:6]))

    # Bit-stability across a physical shuffle.
    print("\nShuffling the table physically (same logical content)...")
    for mode in ("ieee", "repro"):
        db = Database(sum_mode=mode)
        db.catalog.add(shuffled_copy(reference_db, seed=7))
        stable = q1_bits(run_q1(db)) == q1_bits(results[mode])
        print(f"  {mode:<6}: Q1 bit-identical after shuffle? {stable}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.005)
