"""Quickstart: bit-reproducible sums and GROUP BY SUM in five minutes.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def section(title):
    print(f"\n=== {title} ===")


def main():
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    section("The problem: IEEE summation depends on order")
    values = rng.exponential(size=1_000_000)
    forward = float(np.sum(values))
    backward = float(np.sum(values[::-1]))
    print(f"np.sum forward : {forward!r}")
    print(f"np.sum backward: {backward!r}")
    print(f"bit-identical? {repro.same_bits(forward, backward)}")

    # ------------------------------------------------------------------
    section("reproducible_sum: same bits for any order")
    r_forward = repro.reproducible_sum(values)
    r_backward = repro.reproducible_sum(values[::-1])
    r_shuffled = repro.reproducible_sum(rng.permutation(values))
    print(f"repro forward : {float(r_forward)!r}")
    print(f"repro backward: {float(r_backward)!r}")
    print(f"repro shuffled: {float(r_shuffled)!r}")
    assert repro.same_bits(r_forward, r_backward)
    assert repro.same_bits(r_forward, r_shuffled)
    print("bit-identical across permutations: True")

    # ------------------------------------------------------------------
    section("Accuracy: L=2 matches IEEE, L=3 exceeds it")
    import math

    exact = math.fsum(values)
    print(f"exact (fsum)      : {exact!r}")
    print(f"np.sum error      : {abs(forward - exact):.3e}")
    for levels in (1, 2, 3):
        result = repro.reproducible_sum(values, levels=levels)
        print(f"repro L={levels} error   : {abs(float(result) - exact):.3e}")

    # ------------------------------------------------------------------
    section("Streaming and parallel merging")
    left = repro.ReproducibleSummer()
    right = repro.ReproducibleSummer()
    left.add_array(values[:500_000])
    right.add_array(values[500_000:])
    left.merge(right)  # e.g. combining two workers' partial states
    assert repro.same_bits(left.result(), r_forward)
    print("merge(half, half) == whole: True (bitwise)")

    # ------------------------------------------------------------------
    section("GROUP BY SUM: the paper's main subject")
    keys = rng.integers(0, 1024, size=values.size).astype(np.uint32)
    table = repro.group_sum(keys, values)  # reproducible by default
    print(f"{len(table)} groups; first 3:")
    for key, total in list(zip(table.keys, table.sums))[:3]:
        print(f"  key {key}: {total!r}")
    perm = rng.permutation(values.size)
    table2 = repro.group_sum(keys[perm], values[perm])
    print(f"bit-identical after physical reshuffle? {table.bit_equal(table2)}")

    conventional = repro.group_sum(keys, values, reproducible=False)
    conventional2 = repro.group_sum(keys[perm], values[perm], reproducible=False)
    print(
        "conventional floats, same comparison:   "
        f"{conventional.bit_equal(conventional2)}"
    )

    # ------------------------------------------------------------------
    section("The drop-in accumulator type repro<ScalarT, L>")
    acc = repro.ReproFloat("double", levels=2)
    acc += 0.1
    acc += 1e17
    acc += -1e17
    print(f"0.1 + 1e17 - 1e17 via repro<double,2>: {float(acc)!r}")
    print(f"same via plain floats:                 {(0.1 + 1e17) - 1e17!r}")

    print("\nDone.  See examples/algorithm1_sql.py for the SQL-level demo.")


if __name__ == "__main__":
    main()
