"""Machine-learning feature pipelines on reproducible kernels.

The paper's introduction motivates reproducibility with algorithmic
accountability: models retrained or re-scored on the "same" data should
make the same decisions.  But feature pipelines are full of GROUP BY
SUMs (per-entity totals), means, variances (standardisation), and dot
products (scoring) — all order-dependent under IEEE floats.

This example builds a small credit-scoring-style pipeline twice, on two
physical orderings of the same transaction log, and compares:

* conventional NumPy kernels — features and scores drift, and a
  threshold decision flips for some entities;
* this library's reproducible kernels — bit-identical end to end.

Run:  python examples/ml_feature_aggregation.py
"""

import numpy as np

import repro
from repro.core import reproducible_dot, reproducible_mean, reproducible_std


def make_transactions(rng, n, ncustomers):
    customers = rng.integers(0, ncustomers, size=n).astype(np.uint32)
    # Heavy-tailed amounts, mixed signs (payments/refunds), wide range.
    amounts = rng.choice([-1.0, 1.0], n) * np.exp(rng.normal(3, 2.5, n))
    return customers, amounts


def features_conventional(customers, amounts, ncustomers):
    totals = np.zeros(ncustomers)
    np.add.at(totals, customers, amounts)
    mean = float(np.mean(amounts))
    std = float(np.std(amounts))
    return (totals - mean) / std


def features_reproducible(customers, amounts, ncustomers):
    table = repro.group_sum(customers, amounts, levels=3)
    totals = np.zeros(ncustomers)
    totals[table.keys.astype(np.int64)] = table.sums
    mean = reproducible_mean(amounts, levels=3)
    std = reproducible_std(amounts, levels=3)
    return (totals - mean) / std


def main():
    rng = np.random.default_rng(7)
    ncustomers = 500
    customers, amounts = make_transactions(rng, 200_000, ncustomers)
    weights = rng.normal(size=ncustomers)
    order = rng.permutation(len(customers))

    print(f"{len(customers)} transactions, {ncustomers} customers")
    print("Re-running the pipeline on a physically reordered log...\n")

    # Conventional pipeline: how many distinct answers do five
    # "identical" runs produce?
    f1 = features_conventional(customers, amounts, ncustomers)
    distinct_scores = set()
    drift = np.zeros(ncustomers)
    for seed in range(5):
        reorder = np.random.default_rng(seed).permutation(len(customers))
        f = features_conventional(
            customers[reorder], amounts[reorder], ncustomers
        )
        drift = np.maximum(drift, np.abs(f - f1))
        distinct_scores.add(float(np.dot(weights, f)))
    print("-- conventional NumPy kernels, 5 reorderings of the log --")
    print(f"feature drift (max abs):    {drift.max():.3e}")
    print(f"distinct portfolio scores:  {len(distinct_scores)}")
    for score in sorted(distinct_scores):
        print(f"    {score!r}")
    print("(same data, same code — answers depend on storage order;")
    print(" a decision threshold in the drift band flips customers)\n")

    # Reproducible pipeline.
    r1 = features_reproducible(customers, amounts, ncustomers)
    r2 = features_reproducible(customers[order], amounts[order], ncustomers)
    identical = bool(np.array_equal(r1.view(np.uint64), r2.view(np.uint64)))
    rscore1 = reproducible_dot(weights, r1, levels=3)
    rscore2 = reproducible_dot(weights, r2, levels=3)
    print("-- reproducible kernels (this library) --")
    print(f"features bit-identical:  {identical}")
    print(f"portfolio score run 1:   {rscore1!r}")
    print(f"portfolio score run 2:   {rscore2!r}")
    print(f"scores bit-identical:    {repro.same_bits(rscore1, rscore2)}")

    assert identical and repro.same_bits(rscore1, rscore2)
    print(
        "\nEvery customer gets the same standardised features and the"
        "\nsame decision, no matter how the storage layer orders the log"
        "\n— the paper's accountability story, end to end."
    )


if __name__ == "__main__":
    main()
