"""Figure 6: chunked RSUM SCALAR/SIMD vs conventional summation.

Paper: calling the summation once per chunk of c values (the buffered
aggregation pattern), SCALAR wins below a cross-over chunk size
(12-48), SIMD above; at c = 512 SIMD reaches its c = infinity plateau —
at most +25 % over std::accumulate for single precision and *faster*
than it for double.

Model: full series per precision/level with cross-overs.  Measured:
the NumPy kernel's per-element cost versus chunk size at n = 2**18 —
the amortisation curve (cost strictly decreasing in c, flattening by
c ~ 2**9) is the same phenomenon at Python scale.
"""

import numpy as np
import pytest

from _common import emit, ns_per_element, table
from repro.core import ReproducibleSummer
from repro.simulator import PAPER_ANCHORS, fig6_crossover, fig6_series

N_MEASURED = 2**18
CHUNKS = [2**i for i in range(4, 13)]


@pytest.fixture(scope="module")
def values():
    return np.random.default_rng(0).exponential(size=N_MEASURED)


@pytest.mark.parametrize("chunk", CHUNKS)
def test_fig06_measured_chunked_rsum(benchmark, values, chunk):
    def run():
        summer = ReproducibleSummer("double", 2)
        for start in range(0, values.size, chunk):
            summer.add_array(values[start : start + chunk])
        return summer.result()

    benchmark.group = "fig06-chunked-rsum-double-L2"
    benchmark.pedantic(run, rounds=3, iterations=1)


def test_fig06_measured_conv_baseline(benchmark, values):
    benchmark.group = "fig06-chunked-rsum-double-L2"
    benchmark.pedantic(lambda: np.sum(values), rounds=3, iterations=1)


def test_fig06_report(benchmark, model):
    def build():
        out = {}
        for double in (False, True):
            for levels in (2, 3):
                rows, meta = fig6_series(model, double, levels)
                out[(double, levels)] = (rows, meta)
        return out

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    sections = []
    for (double, levels), (rows, meta) in series.items():
        precision = "double" if double else "single"
        anchors = PAPER_ANCHORS["fig6_annotations"][
            ("double" if double else "float", levels)
        ]
        crossover = fig6_crossover(model, double, levels)
        body = [
            [r["chunk"], round(r["scalar_slowdown"], 2), round(r["simd_slowdown"], 2)]
            for r in rows
        ]
        sections.append(
            table(
                ["chunk c", "scalar slowdown", "simd slowdown"],
                body,
                title=(
                    f"{precision} precision, {levels} levels — model "
                    f"crossover c={crossover} (paper: {anchors['crossover']}), "
                    f"plateau {100 * (meta['simd_inf_slowdown'] - 1):+.1f}% "
                    f"(paper: {anchors['plateau_pct']:+.1f}%)"
                ),
            )
        )
        assert 8 <= crossover <= 64  # paper: between 12 and 48
    emit("fig06_rsum_chunks", *sections)


def test_fig06_double_simd_beats_conv_at_plateau(model):
    _, meta = fig6_series(model, double=True, levels=2)
    assert meta["simd_inf_slowdown"] < 1.0
