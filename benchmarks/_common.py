"""Shared helpers for the benchmark harness.

Every ``bench_*`` module reproduces one of the paper's tables or
figures.  Each combines:

* **model** — the calibrated cost model's series for the paper's full
  parameter ranges (n = 2**30 etc.), printed next to the paper's
  anchor values;
* **measured** — pytest-benchmark timings of this library's Python
  kernels at laptop scale, demonstrating the *shape* (who wins, where
  cross-overs fall) where Python timings are meaningful.

Reports are printed to stdout (the suite runs with ``-s``) and
mirrored under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.analysis.reporting import banner, format_table


def results_dir() -> str:
    """Where reports land: ``REPRO_BENCH_RESULTS_DIR`` if set (CI
    redirects artifacts there), else ``benchmarks/results/``."""
    override = os.environ.get("REPRO_BENCH_RESULTS_DIR")
    if override:
        return override
    return os.path.join(os.path.dirname(__file__), "results")


#: Kept for callers that import the constant; prefer :func:`results_dir`.
RESULTS_DIR = results_dir()

#: Machine-readable per-kernel numbers for the CI bench-regression gate
#: (compared against ``benchmarks/baseline.json``).
BENCH_JSON = "BENCH_pr.json"


def emit(name: str, *sections: str) -> None:
    """Print a report and mirror it to <results_dir>/<name>.txt."""
    text = "\n\n".join([banner(name)] + list(sections)) + "\n"
    print("\n" + text)
    target = results_dir()
    os.makedirs(target, exist_ok=True)
    path = os.path.join(target, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def _load_bench_json(path: str) -> dict:
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    return {"ns_per_element": {}, "speedups": {}}


def record_kernel(name: str, ns: float) -> None:
    """Merge one kernel's ns/element into <results_dir>/BENCH_pr.json."""
    _record("ns_per_element", name, ns)


def record_speedup(name: str, ratio: float) -> None:
    """Merge one speedup ratio (dimensionless, machine-relative) into
    <results_dir>/BENCH_pr.json."""
    _record("speedups", name, ratio)


def _record(section: str, name: str, value: float) -> None:
    target = results_dir()
    os.makedirs(target, exist_ok=True)
    path = os.path.join(target, BENCH_JSON)
    payload = _load_bench_json(path)
    payload.setdefault(section, {})[name] = round(float(value), 4)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def table(headers, rows, title="") -> str:
    return format_table(headers, rows, title)


def ns_per_element(seconds: float, n: int) -> float:
    return seconds / n * 1e9


def standard_pairs(n: int, ngroups: int, seed: int = 0, dtype=np.float64):
    """The paper's standard workload at bench scale."""
    from repro.workloads.generators import make_pairs

    return make_pairs(n, ngroups, "Exp(1)", dtype, seed)
