"""Shared helpers for the benchmark harness.

Every ``bench_*`` module reproduces one of the paper's tables or
figures.  Each combines:

* **model** — the calibrated cost model's series for the paper's full
  parameter ranges (n = 2**30 etc.), printed next to the paper's
  anchor values;
* **measured** — pytest-benchmark timings of this library's Python
  kernels at laptop scale, demonstrating the *shape* (who wins, where
  cross-overs fall) where Python timings are meaningful.

Reports are printed to stdout (the suite runs with ``-s``) and
mirrored under ``benchmarks/results/``.
"""

from __future__ import annotations

import os

import numpy as np

from repro.analysis.reporting import banner, format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, *sections: str) -> None:
    """Print a report and mirror it to benchmarks/results/<name>.txt."""
    text = "\n\n".join([banner(name)] + list(sections)) + "\n"
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text)


def table(headers, rows, title="") -> str:
    return format_table(headers, rows, title)


def ns_per_element(seconds: float, n: int) -> float:
    return seconds / n * 1e9


def standard_pairs(n: int, ngroups: int, seed: int = 0, dtype=np.float64):
    """The paper's standard workload at bench scale."""
    from repro.workloads.generators import make_pairs

    return make_pairs(n, ngroups, "Exp(1)", dtype, seed)
