"""Out-of-core (spill-to-disk) aggregation vs. the in-memory path.

The PR-4 acceptance gate: external aggregation under a *spill-forcing*
memory budget must stay within **3x** the in-memory repro path's
ns/element, while returning **bit-identical** results — the memory
budget is a pure performance knob, exactly like ``workers`` and
``morsel_size``.

Reported series (all ``sum_mode="repro"``, ``workers=1``):

* **high-cardinality GROUP BY** — ``GROUP BY l_orderkey`` (~15k groups
  at bench scale), the workload whose group table genuinely outgrows a
  budget.  Three legs: in-memory (unbounded), external with a
  spill-forcing budget (the tracked ratio), and the pathological
  1-byte budget;
* **TPC-H Q1** — the low-cardinality classic, external with an
  over-pessimistic planner estimate but no actual spills: the
  promotion path must make the external operator ~free when the data
  fits after all.

Everything lands in ``BENCH_pr.json`` for the CI bench-regression
gate: ns/element per leg plus the ``highcard_inmem_over_external``
ratio (in-memory seconds / external seconds; the committed floor of
0.33 is the 3x bound).
"""

import time

import numpy as np

from _common import (
    emit,
    ns_per_element,
    record_kernel,
    record_speedup,
    table,
)
from repro.engine import Database
from repro.tpch import load_lineitem, run_q1

SCALE = 0.01        # ~60k lineitem rows
MORSEL_SIZE = 8192
ROWS = int(SCALE * 6_000_000)
REPS = 5

#: Spill-forcing budget for the tracked leg: below the ~1.5 MiB
#: resident group state of the high-cardinality query, so several runs
#: spill and re-merge per execution (asserted below).
SPILL_BUDGET = 1024 * 1024
SPILL_PARTITIONS = 2

#: The acceptance bound: external under a spill-forcing budget stays
#: within this factor of the in-memory repro path.
MAX_SLOWDOWN = 3.0

HIGHCARD_QUERY = (
    "SELECT l_orderkey, SUM(l_extendedprice) AS s, RSUM(l_quantity) AS r, "
    "COUNT(*) AS c FROM lineitem GROUP BY l_orderkey ORDER BY l_orderkey"
)


def _result_bits(result):
    pieces = []
    for arr in result.arrays:
        arr = np.asarray(arr)
        if arr.dtype == object:
            pieces.append("|".join(map(repr, arr.tolist())).encode())
        else:
            pieces.append(arr.tobytes())
    return tuple(pieces)


def _measure(run, budget, partitions=SPILL_PARTITIONS):
    db = Database(
        sum_mode="repro", workers=1, morsel_size=MORSEL_SIZE,
        memory_budget=budget, spill_partitions=partitions,
    )
    load_lineitem(db, scale_factor=SCALE)
    result = run(db)  # warm-up
    best = float("inf")
    for _ in range(REPS):
        started = time.perf_counter()
        result = run(db)
        best = min(best, time.perf_counter() - started)
    return best, db.last_pipeline_stats, _result_bits(result)


def test_external_agg_report():
    run_highcard = lambda db: db.execute(HIGHCARD_QUERY)  # noqa: E731

    inmem_s, inmem_stats, inmem_bits = _measure(run_highcard, None)
    spill_s, spill_stats, spill_bits = _measure(run_highcard, SPILL_BUDGET)
    patho_s, patho_stats, patho_bits = _measure(run_highcard, 1)

    # Reproducibility first: the budget must be invisible in the bits.
    assert not inmem_stats.external
    assert spill_stats.external and spill_stats.spilled_runs > 0
    assert patho_stats.external and patho_stats.spilled_runs > 0
    assert spill_bits == inmem_bits
    assert patho_bits == inmem_bits

    # Q1: external chosen (pessimistic estimate) but never spills —
    # the promotion path keeps it at in-memory speed.
    q1_inmem_s, _, q1_inmem_bits = _measure(run_q1, None)
    q1_ext_s, q1_stats, q1_ext_bits = _measure(run_q1, 1 << 20)
    assert q1_stats.external and q1_stats.spilled_runs == 0
    assert q1_ext_bits == q1_inmem_bits

    ratio = inmem_s / spill_s
    record_kernel("extagg_highcard_inmem", ns_per_element(inmem_s, ROWS))
    record_kernel("extagg_highcard_spill", ns_per_element(spill_s, ROWS))
    record_kernel("extagg_q1_nospill", ns_per_element(q1_ext_s, ROWS))
    record_speedup("highcard_inmem_over_external", ratio)

    rows = [
        (
            "highcard in-memory", "unbounded",
            f"{inmem_s * 1e3:.1f}", f"{ns_per_element(inmem_s, ROWS):.0f}",
            0, "1.00x",
        ),
        (
            "highcard external", f"{SPILL_BUDGET >> 10} KiB",
            f"{spill_s * 1e3:.1f}", f"{ns_per_element(spill_s, ROWS):.0f}",
            spill_stats.spilled_runs, f"{spill_s / inmem_s:.2f}x",
        ),
        (
            "highcard pathological", "1 B",
            f"{patho_s * 1e3:.1f}", f"{ns_per_element(patho_s, ROWS):.0f}",
            patho_stats.spilled_runs, f"{patho_s / inmem_s:.2f}x",
        ),
        (
            "Q1 external (no spill)", "1 MiB",
            f"{q1_ext_s * 1e3:.1f}", f"{ns_per_element(q1_ext_s, ROWS):.0f}",
            0, f"{q1_ext_s / q1_inmem_s:.2f}x",
        ),
    ]
    emit(
        "bench_external_agg",
        table(
            ["leg", "budget", "ms", "ns/el", "runs spilled", "vs in-memory"],
            rows,
            title=(
                f"Out-of-core aggregation, repro mode "
                f"({ROWS} rows, ~15k groups, P={SPILL_PARTITIONS})"
            ),
        ),
        (
            f"spill-forcing slowdown {spill_s / inmem_s:.2f}x "
            f"(gate: <= {MAX_SLOWDOWN}x, enforced via the "
            f"highcard_inmem_over_external floor in baseline.json); "
            f"all legs bit-identical to the in-memory repro path."
        ),
    )

    assert spill_s <= inmem_s * MAX_SLOWDOWN, (
        f"external aggregation {spill_s / inmem_s:.2f}x exceeds the "
        f"{MAX_SLOWDOWN}x bound"
    )
