"""Table III: geometric-mean slowdown of buffered repro types vs float.

Paper: 1.88-2.35 (float-based) and 2.12-2.41 (double-based) across all
group counts — "an affordable price for full reproducibility".
"""

import pytest

from _common import emit, table
from repro.simulator import PAPER_ANCHORS, table3_geomeans


def test_table3_report(benchmark, model):
    geomeans = benchmark.pedantic(
        lambda: table3_geomeans(model), rounds=1, iterations=1
    )
    order = [
        "repro<double,1>", "repro<double,2>", "repro<double,3>",
        "repro<double,4>", "repro<float,1>", "repro<float,2>",
        "repro<float,3>", "repro<float,4>",
    ]
    body = [
        [label, round(geomeans[label], 2), PAPER_ANCHORS["table3"][label]]
        for label in order
    ]
    emit(
        "tab03_geomean_slowdown",
        table(["data type", "model slowdown", "paper slowdown"], body,
              title="Geometric mean slowdown vs float, all group counts"),
    )
    for label in order:
        assert geomeans[label] == pytest.approx(
            PAPER_ANCHORS["table3"][label], rel=0.25
        ), label
    lo, hi = PAPER_ANCHORS["headline_slowdown_range"]
    values = list(geomeans.values())
    # Headline claim: "slowdown of about a factor of two".
    assert min(values) >= lo * 0.85
    assert max(values) <= hi * 1.25
