"""Figure 12 (Appendix B): buffer-size impact with one partitioning pass.

Paper: qualitatively identical to Figure 8, but the fan-out of 256
divides the groups each aggregation sees — data sets with 256x more
groups fit before the cliff — at the constant extra cost of the
partitioning pass.
"""

import pytest

from _common import emit, table
from repro.simulator import fig8_series, fig12_series


def test_fig12_report(benchmark, model):
    out = benchmark.pedantic(lambda: fig12_series(model), rounds=1, iterations=1)
    bsizes = out["buffer_sizes"]

    def panel(data, title):
        return table(
            ["data type"] + [str(b) for b in bsizes],
            [[label] + [round(v, 2) for v in series] for label, series in data.items()],
            title=title,
        )

    panel_c_rows = [
        [bsz] + [round(v, 1) for v in series]
        for bsz, series in out["panel_c"].items()
    ]
    emit(
        "fig12_buffer_size_d1",
        panel(out["panel_a"], "(a) 4096 groups, d=1 — model ns/element"),
        panel(out["panel_b"], "(b) 262144 groups, d=1 — model ns/element"),
        table(
            ["bsz"] + [f"2^{e}" for e in out["group_exps"]],
            panel_c_rows,
            title="(c) repro<float,2>, d=1 — model ns/element vs ngroups",
        ),
    )
    # 4096 groups behind fan-out 256 behave like 16 groups at d=0.
    for label, series in out["panel_a"].items():
        assert series[-1] <= series[0], label
    # 262144 groups behind fan-out 256 = 1024 per partition: cliff.
    for label, series in out["panel_b"].items():
        assert series[bsizes.index(1024)] > series[bsizes.index(128)], label


def test_fig12_shift_by_fanout(benchmark, model):
    """The d=1 cliff for a given bsz sits 256x later in ngroups."""
    d0 = fig8_series(model)
    d1 = fig12_series(model)

    def cliff(series, exps):
        base = series[0]
        for e, v in zip(exps, series):
            if v > 1.6 * base:
                return e
        return exps[-1] + 1

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for bsz in (64, 256, 1024):
        c0 = cliff(d0["panel_c"][bsz], d0["group_exps"])
        c1 = cliff(d1["panel_c"][bsz], d1["group_exps"])
        # 2**8 = fan-out 256 (one grid step of slack: the partition
        # pass shifts the baseline the relative threshold is taken on).
        assert c1 - c0 in (8, 9)
