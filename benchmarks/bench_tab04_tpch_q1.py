"""Table IV: end-to-end TPC-H Query 1 CPU time under four SUM modes.

Paper (MonetDB, DECIMAL->DOUBLE): relative to unmodified CPU time,
repro<double,4> without buffers costs 114.4 %, with buffers 102.7 %
(the 2.7 % headline), and sorting costs 727 %.

Measured here on our engine: Q1 under ieee / per-tuple repro (the
unbuffered drop-in) / vectorised repro (the buffered equivalent) /
sorted, with per-operator timings.  Python exaggerates the per-tuple
mode (no SIMD hash aggregation to hide behind), but the *ordering* —
buffered overhead small, per-tuple noticeable, sorting the worst
reproducible option... — is checked; paper values are printed
alongside.
"""

import time

import numpy as np
import pytest

from _common import emit, table
from repro.aggregation import ReproSpec, hash_aggregate
from repro.engine import Database
from repro.simulator import PAPER_ANCHORS
from repro.tpch import Q1_SQL, load_lineitem, run_q1

SCALE = 0.003  # 18k rows; enough for stable relative timings


@pytest.fixture(scope="module")
def q1_timings():
    results = {}
    for mode in ("ieee", "repro", "sorted"):
        db = Database(sum_mode=mode, levels=4)
        load_lineitem(db, scale_factor=SCALE)
        run_q1(db)  # warm-up
        best = None
        for _ in range(3):
            started = time.perf_counter()
            run_q1(db)
            elapsed = time.perf_counter() - started
            agg = db.last_timings.seconds.get("aggregation", 0.0)
            if best is None or elapsed < best[0]:
                best = (elapsed, agg)
        results[mode] = {"total": best[0], "aggregation": best[1]}

    # The per-tuple (unbuffered drop-in) variant measured on the same
    # aggregation workload: Q1's group-by columns through elementwise
    # repro<double,4> accumulation.
    db = Database(sum_mode="ieee")
    load_lineitem(db, scale_factor=SCALE)
    data = db.table("lineitem").scan()
    flags, statuses = data["l_returnflag"], data["l_linestatus"]
    composite = np.asarray(
        [f + s for f, s in zip(flags, statuses)], dtype=object
    )
    _, gids = np.unique(composite, return_inverse=True)
    values = data["l_extendedprice"] * (1 - data["l_discount"])
    started = time.perf_counter()
    spec = ReproSpec("double", 4)
    tbl = spec.make_table(int(gids.max()) + 1)
    spec.accumulate_elementwise(tbl, gids, values)
    per_tuple_one_sum = time.perf_counter() - started
    # Q1 has four SUMs + three AVGs (sums): scale to seven aggregates.
    results["repro_per_tuple"] = {
        "total": results["ieee"]["total"]
        - results["ieee"]["aggregation"]
        + 7 * per_tuple_one_sum,
        "aggregation": 7 * per_tuple_one_sum,
    }
    return results


def test_tab04_measured_q1_modes(benchmark, q1_timings):
    db = Database(sum_mode="repro", levels=4)
    load_lineitem(db, scale_factor=SCALE)
    benchmark.group = "tab04-q1-end-to-end"
    benchmark.pedantic(lambda: run_q1(db), rounds=3, iterations=1)


def test_tab04_report(benchmark, q1_timings):
    timings = benchmark.pedantic(lambda: q1_timings, rounds=1, iterations=1)
    base_total = timings["ieee"]["total"]

    def pct(seconds):
        return round(100.0 * seconds / base_total, 1)

    paper = PAPER_ANCHORS["table4"]
    body = [
        ["double (ieee)", pct(timings["ieee"]["aggregation"]),
         pct(timings["ieee"]["total"]),
         paper["double"]["aggregations"], paper["double"]["total"]],
        ["repro<double,4> w/o buffer",
         pct(timings["repro_per_tuple"]["aggregation"]),
         pct(timings["repro_per_tuple"]["total"]),
         paper["repro<double,4> w/o buffer"]["aggregations"],
         paper["repro<double,4> w/o buffer"]["total"]],
        ["repro<double,4> buffered", pct(timings["repro"]["aggregation"]),
         pct(timings["repro"]["total"]),
         paper["repro<double,4> with buffer"]["aggregations"],
         paper["repro<double,4> with buffer"]["total"]],
        ["double (sorted)", pct(timings["sorted"]["aggregation"]),
         pct(timings["sorted"]["total"]),
         paper["double (sorted)"]["aggregations"],
         paper["double (sorted)"]["total"]],
    ]
    emit(
        "tab04_tpch_q1",
        table(
            ["approach", "agg % (ours)", "total % (ours)",
             "agg % (paper)", "total % (paper)"],
            body,
            title=f"TPC-H Q1, SF={SCALE} on our engine vs paper's MonetDB "
                  "(% of the ieee total)",
        ),
        "Note: our per-tuple column is Python-exaggerated (the paper's\n"
        "MonetDB baseline hides repro costs behind overflow checks);\n"
        "the ordering buffered << per-tuple is the claim under test.\n"
        "The paper's sorted baseline (727 %) re-sorts the input per\n"
        "query in MonetDB; our engine's sorted mode sorts only the\n"
        "aggregation pairs, so its overhead is smaller but same-signed.",
    )
    # Ordering claims (the reproducible-aggregation story).
    buffered_over = timings["repro"]["total"] / base_total
    per_tuple_over = timings["repro_per_tuple"]["total"] / base_total
    assert buffered_over < per_tuple_over
    # Buffered overhead is small end-to-end (paper: 2.7 %; allow Python
    # slack — the claim is "single-digit-ish percent, not 2x").
    assert buffered_over < 1.6
    # Sorted mode costs more than buffered repro in aggregation time.
    assert timings["sorted"]["aggregation"] >= timings["repro"]["aggregation"] * 0.8
