"""Figure 4: HASHAGGREGATION with different reproducible data types.

Paper setup: n = 2**30 pairs, 16 groups, per-tuple ``operator+=`` on
the intermediate aggregate; the reproducible types cost 3.7x-12.3x the
uint32 baseline, scaling linearly in L.

Reproduced here as (a) the calibrated model at the paper's scale and
(b) measured pytest-benchmark timings of the per-tuple accumulation
kernels at n = 2**14 — Python's relative overheads differ, but the
linear-in-L scaling and float~double equivalence both show.
"""

import numpy as np
import pytest

from _common import emit, ns_per_element, standard_pairs, table
from repro.aggregation import ConventionalFloatSpec, ReproSpec, hash_aggregate
from repro.simulator import fig4_series

N_MEASURED = 2**14
NGROUPS = 16

_SPECS = {
    "double": ConventionalFloatSpec(np.float64),
    "float": ConventionalFloatSpec(np.float32),
    "repro<double,1>": ReproSpec("double", 1),
    "repro<double,2>": ReproSpec("double", 2),
    "repro<double,3>": ReproSpec("double", 3),
    "repro<double,4>": ReproSpec("double", 4),
    "repro<float,2>": ReproSpec("float", 2),
}


@pytest.fixture(scope="module")
def pairs():
    return standard_pairs(N_MEASURED, NGROUPS)


@pytest.mark.parametrize("label", list(_SPECS))
def test_fig04_measured_per_tuple_accumulation(benchmark, pairs, label):
    """Per-tuple (elementwise) accumulation — the unmodified operator."""
    keys, values = pairs
    spec = _SPECS[label]
    values = values.astype(np.float32) if "float" in label and "double" not in label else values

    benchmark.group = "fig04-per-tuple-hashagg-16groups"
    benchmark.pedantic(
        lambda: hash_aggregate(keys, values, spec, elementwise=True),
        rounds=3,
        iterations=1,
    )


def test_fig04_report(benchmark, model):
    rows = benchmark.pedantic(lambda: fig4_series(model), rounds=1, iterations=1)
    base_ns = rows[0]["model_ns"]
    emit(
        "fig04_repro_type_overhead",
        table(
            ["data type", "model ns/elem", "model ratio", "paper ratio"],
            [
                [r["dtype"], round(r["model_ns"], 2),
                 round(r["model_ratio"], 2), r["paper_ratio"]]
                for r in rows
            ],
            title=f"HASHAGGREGATION, 16 groups (baseline {base_ns:.2f} ns)",
        ),
        "Paper: repro types are 4x-12x slower per tuple, ~linear in L,\n"
        "float and double nearly identical (compute-bound).",
    )
    for r in rows:
        assert abs(r["model_ratio"] - r["paper_ratio"]) / r["paper_ratio"] < 0.15
