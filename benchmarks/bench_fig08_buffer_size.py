"""Figure 8: impact of the buffer size on PARTITIONANDAGGREGATE (d = 0).

Paper: (a) at 16 groups bigger buffers always help (gains marginal
past 2**8); (b) at 1024 groups performance collapses past bsz = 2**8
(single) / 2**7 (double) when the working set leaves the ~1 MiB LLC
share; (c) for each fixed bsz the collapse comes at the group count
predicted by the Equation-4 footprint.

Model: all three panels.  Measured: panel (a)'s amortisation effect is
real in Python too — per-element cost of a single group's buffered
accumulation falls as bsz grows.
"""

import numpy as np
import pytest

from _common import emit, table
from repro.core import BufferedReproFloat, optimal_buffer_size
from repro.simulator import fig8_series

BUFFER_SIZES_MEASURED = [2**i for i in range(4, 11)]
N_MEASURED = 2**15


@pytest.mark.parametrize("bsz", BUFFER_SIZES_MEASURED)
def test_fig08a_measured_amortisation(benchmark, bsz):
    values = np.random.default_rng(0).exponential(size=N_MEASURED)

    def run():
        buf = BufferedReproFloat("double", 2, buffer_size=bsz)
        buf.append_array(values)
        return buf.value

    benchmark.group = "fig08a-buffered-single-group"
    benchmark.pedantic(run, rounds=3, iterations=1)


def test_fig08_report(benchmark, model):
    out = benchmark.pedantic(lambda: fig8_series(model), rounds=1, iterations=1)
    bsizes = out["buffer_sizes"]

    def panel(data, title):
        body = []
        for label, series in data.items():
            body.append([label] + [round(v, 2) for v in series])
        return table(["data type"] + [str(b) for b in bsizes], body, title=title)

    panel_c_rows = []
    for bsz, series in out["panel_c"].items():
        panel_c_rows.append([bsz] + [round(v, 1) for v in series])
    emit(
        "fig08_buffer_size",
        panel(out["panel_a"], "(a) 16 groups — model ns/element vs bsz"),
        panel(out["panel_b"], "(b) 1024 groups — model ns/element vs bsz"),
        table(
            ["bsz"] + [f"2^{e}" for e in out["group_exps"]],
            panel_c_rows,
            title="(c) repro<float,2> — model ns/element vs ngroups",
        ),
        "Cliffs sit where bsz * ngroups * sizeof(ScalarT) crosses ~1 MiB\n"
        "(Equation 4's working set), as in the paper.",
    )

    # (a): monotone improvement at 16 groups.
    for label, series in out["panel_a"].items():
        assert series[-1] <= series[0], label
    # (b): collapse past 2**8 at 1024 groups.
    for label, series in out["panel_b"].items():
        assert series[bsizes.index(1024)] > series[bsizes.index(128)], label


def test_fig08_equation4_close_to_optimal(benchmark, model):
    """Paper: 75 % of configs within 1 % of optimal, 90 % within 5 %,
    worst 20 %.  The model agrees Equation 4 is near-optimal, with the
    worst deviation where Equation 4 fills the cache to the brim (the
    paper observes the same: "bsz = 512 is slightly better than the
    predicted bsz = 1024 for 2**6 groups")."""
    from repro.simulator import dtype_model

    def sweep():
        ratios = []
        dt = dtype_model("repro<float,2>").buffered()
        for exp in range(4, 15):
            ngroups = 2**exp
            eq4 = optimal_buffer_size(ngroups, 4)
            cost = model.hash_agg_total_ns(dt, ngroups, buffer_size=eq4)
            best = min(
                model.hash_agg_total_ns(dt, ngroups, buffer_size=b)
                for b in BUFFER_SIZES_MEASURED
            )
            ratios.append(cost / best)
        return ratios

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Majority of configurations near-optimal, worst bounded.
    within_7pct = sum(1 for r in ratios if r <= 1.07)
    assert within_7pct >= len(ratios) // 2
    assert max(ratios) <= 1.35
