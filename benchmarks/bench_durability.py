"""Durability cost: WAL'd inserts vs in-memory, and recovery throughput.

The PR-9 acceptance gates:

* **WAL overhead** — batched INSERTs into a durable database
  (``wal_sync="commit"``: one fsync per statement, column tails logged
  as raw little-endian bytes) must stay within **1.5x** of the same
  inserts into an in-memory database.  Enforced through
  ``baseline.json``'s ``durable_insert_vs_inmem`` floor (the ratio is
  inmem/durable, so the floor is ``1/1.5 ~= 0.65``).
* **Recovery throughput** — reopening a crashed directory replays the
  WAL through the same physical-effect path; its ns/element over the
  recovered rows lands in ``BENCH_pr.json`` as a regression-gated
  kernel, alongside checkpoint write + checkpoint-based recovery.

Recovery is also *verified* here, not just timed: the reopened
database must serve byte-identical GROUP BY SUM bits to the one that
crashed — a benchmark that recovered fast but wrong must fail.
"""

import shutil
import tempfile
import time

import numpy as np

from _common import emit, ns_per_element, record_kernel, record_speedup, table
from repro.engine import Database

ROWS = 200_000
BATCH = 20_000
NGROUPS = 64
REPS = 3

#: Acceptance bound via baseline.json's ``durable_insert_vs_inmem``
#: floor: inserts may not slow down past 1.5x in-memory.
MIN_INSERT_RATIO = 1.0 / 1.5

QUERY = "SELECT k, SUM(v) AS sv, COUNT(*) AS c FROM obs GROUP BY k ORDER BY k"


def _batches():
    rng = np.random.default_rng(20180909)
    keys = rng.integers(0, NGROUPS, size=ROWS)
    values = rng.choice([-1.0, 1.0], size=ROWS) * np.exp2(
        rng.uniform(-30, 30, size=ROWS)
    )
    rows = [
        {"k": int(k), "v": float(v)} for k, v in zip(keys, values)
    ]
    return [rows[i : i + BATCH] for i in range(0, ROWS, BATCH)]


def _drive_inserts(db, batches) -> float:
    db.execute("CREATE TABLE obs (k INT, v DOUBLE)")
    obs = db.table("obs")
    started = time.perf_counter()
    for batch in batches:
        obs.insert_rows(batch)
    return time.perf_counter() - started


def _result_bits(result) -> tuple:
    return tuple(np.asarray(arr).tobytes() for arr in result.arrays)


def test_durability_report():
    batches = _batches()

    # -- in-memory reference ----------------------------------------------
    inmem_s = float("inf")
    for _ in range(REPS):
        db = Database(sum_mode="repro")
        try:
            inmem_s = min(inmem_s, _drive_inserts(db, batches))
        finally:
            db.close()

    # -- durable inserts + crash + WAL-replay recovery --------------------
    durable_s = wal_recover_s = float("inf")
    expected_bits = None
    for _ in range(REPS):
        tmp = tempfile.mkdtemp(prefix="repro-bench-durability-")
        try:
            db = Database(
                sum_mode="repro", path=tmp, checkpoint_interval=None
            )
            durable_s = min(durable_s, _drive_inserts(db, batches))
            expected_bits = _result_bits(db.execute(QUERY))
            db.simulate_crash()
            started = time.perf_counter()
            recovered = Database(
                sum_mode="repro", path=tmp, checkpoint_interval=None
            )
            wal_recover_s = min(
                wal_recover_s, time.perf_counter() - started
            )
            assert len(recovered.table("obs")) == ROWS
            # Fast but wrong is a failure: recovered bits must match.
            assert _result_bits(recovered.execute(QUERY)) == expected_bits
            recovered.close()
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    # -- checkpoint write + checkpoint-based recovery ---------------------
    checkpoint_s = ckpt_recover_s = float("inf")
    for _ in range(REPS):
        tmp = tempfile.mkdtemp(prefix="repro-bench-durability-")
        try:
            db = Database(
                sum_mode="repro", path=tmp, checkpoint_interval=None
            )
            _drive_inserts(db, batches)
            started = time.perf_counter()
            db.checkpoint()
            checkpoint_s = min(checkpoint_s, time.perf_counter() - started)
            db.simulate_crash()
            started = time.perf_counter()
            recovered = Database(
                sum_mode="repro", path=tmp, checkpoint_interval=None
            )
            ckpt_recover_s = min(
                ckpt_recover_s, time.perf_counter() - started
            )
            assert _result_bits(recovered.execute(QUERY)) == expected_bits
            recovered.close()
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    ratio = inmem_s / durable_s
    record_kernel("insert_inmem", ns_per_element(inmem_s, ROWS))
    record_kernel("insert_durable_wal", ns_per_element(durable_s, ROWS))
    record_kernel("recovery_wal_replay", ns_per_element(wal_recover_s, ROWS))
    record_kernel("recovery_checkpoint", ns_per_element(ckpt_recover_s, ROWS))
    record_speedup("durable_insert_vs_inmem", ratio)

    report = table(
        ("leg", "seconds", "ns/element"),
        [
            ("in-memory inserts", f"{inmem_s:.3f}",
             f"{ns_per_element(inmem_s, ROWS):.1f}"),
            ("durable inserts (WAL fsync/commit)", f"{durable_s:.3f}",
             f"{ns_per_element(durable_s, ROWS):.1f}"),
            ("recovery: WAL replay", f"{wal_recover_s:.3f}",
             f"{ns_per_element(wal_recover_s, ROWS):.1f}"),
            ("checkpoint write", f"{checkpoint_s:.3f}",
             f"{ns_per_element(checkpoint_s, ROWS):.1f}"),
            ("recovery: checkpoint image", f"{ckpt_recover_s:.3f}",
             f"{ns_per_element(ckpt_recover_s, ROWS):.1f}"),
        ],
        title=f"{ROWS} rows in {BATCH}-row statements, sum_mode=repro",
    )
    verdict = (
        f"durable/inmem insert overhead {durable_s / inmem_s:.2f}x "
        f"(gate: <= {1.0 / MIN_INSERT_RATIO:.2f}x); recovered bits "
        f"verified byte-identical"
    )
    emit("bench_durability", report, verdict)
    assert ratio >= MIN_INSERT_RATIO * 0.8, (
        f"WAL insert overhead blew past the gate locally: "
        f"{durable_s / inmem_s:.2f}x in-memory"
    )
