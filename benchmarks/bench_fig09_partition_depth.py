"""Figure 9: partitioning depth d = 0, 1, 2 for repro<float,2>+buffers.

Paper: no partitioning wins below ~2**10 groups; one level wins up to
~2**18; two levels beyond — i.e. each level pays off once the groups
*per partition* exceed the in-cache threshold again.

Model: the sweep plus its implied thresholds (the model lands within
4x of the paper's 2**10/2**18; see EXPERIMENTS.md).  Measured: actual
partitioning passes cost real time in Python too, so depth>0 must be
slower at small group counts — the left side of the figure.
"""

import numpy as np
import pytest

from _common import emit, standard_pairs, table
from repro.aggregation import ReproSpec, partition_and_aggregate
from repro.simulator import fig9_series

N_MEASURED = 2**16


@pytest.mark.parametrize("depth", [0, 1, 2])
def test_fig09_measured_depth_cost_small_groups(benchmark, depth):
    keys, values = standard_pairs(N_MEASURED, 2**4)
    spec = ReproSpec("float", 2)
    benchmark.group = "fig09-depth-at-16-groups"
    benchmark.pedantic(
        lambda: partition_and_aggregate(
            keys, values, spec, depth=depth, fanout=16
        ),
        rounds=3,
        iterations=1,
    )


def test_fig09_report(benchmark, model):
    out = benchmark.pedantic(
        lambda: fig9_series(model, group_exps=list(range(0, 27, 2))),
        rounds=1,
        iterations=1,
    )
    body = []
    for i, exp in enumerate(out["group_exps"]):
        body.append(
            [f"2^{exp}"]
            + [round(out["series"][d][i], 2) for d in (0, 1, 2)]
        )
    emit(
        "fig09_partition_depth",
        table(
            ["ngroups", "d=0", "d=1", "d=2"],
            body,
            title="Model ns/element, repro<float,2> + Equation-4 buffers",
        ),
        f"Model thresholds: {out['thresholds']} "
        "(paper: d1 at 2^10, d2 at 2^18; both a fan-out of 256 apart)",
    )
    t = out["thresholds"]
    assert t["d2"] // t["d1"] == 256
    series = out["series"]
    exps = out["group_exps"]
    # Left side: d=0 cheapest; right side: d=2 cheapest.
    assert series[0][0] < series[1][0] < series[2][0]
    assert series[2][-1] < series[1][-1] < series[0][-1]
    # Middle: d=1 beats both somewhere.
    assert any(
        series[1][i] < series[0][i] and series[1][i] < series[2][i]
        for i in range(len(exps))
    )
