"""Fixtures shared by the benchmark harness."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.simulator import CostModel


@pytest.fixture(scope="session")
def model():
    return CostModel()
