"""Hash-join benchmarks: probe kernel throughput and TPC-H Q3.

Two series, both landing in ``BENCH_pr.json`` for the CI
bench-regression gate:

* **probe micro-kernel** — :class:`repro.engine.join.HashJoin.probe`
  (dictionary-encoded keys, ``searchsorted`` match, ``repeat``/gather
  expansion) against a pure-Python dict probe of the same build table.
  The vectorized kernel must beat the Python loop by the recorded
  speedup floor — joins are on the hot path of every multi-table
  query, so a regression here is a regression everywhere;
* **Q3 end-to-end** — the planner-driven customer x orders x lineitem
  pipeline in repro mode (ns per lineitem row), measured at both
  forced build sides.  The two sides must return **bit-identical**
  results: the planner's build-side choice is a pure performance
  decision, which is exactly what reproducible aggregation buys.
"""

import time

import numpy as np

from _common import emit, ns_per_element, record_kernel, record_speedup, table
from repro.engine import Database
from repro.engine.join import HashJoin
from repro.engine.operators import Batch
from repro.engine.sql import parse_expression
from repro.tpch import load_tpch, run_q3

SCALE = 0.01        # ~60k lineitem rows, ~15k orders, ~1.5k customers
MORSEL_SIZE = 4096
ROWS = int(SCALE * 6_000_000)
REPS = 5

BUILD_ROWS = 20_000
PROBE_ROWS = 1 << 18

#: Acceptance floor: the vectorized probe vs. a Python dict probe.
PROBE_SPEEDUP_FLOOR = 2.0


def _result_bits(result):
    out = []
    for arr in result.arrays:
        arr = np.asarray(arr)
        if arr.dtype.kind == "O":
            out.append(repr(arr.tolist()).encode())
        else:
            out.append(arr.tobytes())
    return tuple(out)


def measure_best(fn, reps=REPS):
    best = float("inf")
    result = None
    for _ in range(reps):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def probe_kernel_series():
    rng = np.random.default_rng(7)
    build_keys = np.arange(BUILD_ROWS, dtype=np.int64)
    build = Batch(
        {"k": build_keys, "w": rng.uniform(size=BUILD_ROWS)}, {}
    )
    probe = Batch(
        {
            "k": rng.integers(0, BUILD_ROWS * 2, size=PROBE_ROWS),
            "v": rng.uniform(size=PROBE_ROWS),
        },
        {},
    )
    join = HashJoin(
        build, (parse_expression("k"),), (parse_expression("k"),)
    )
    join.probe(probe)  # warm-up
    vector_seconds, joined = measure_best(lambda: join.probe(probe))

    # Python-dict baseline probe producing the same pairing.
    lookup = {int(key): i for i, key in enumerate(build_keys)}

    def python_probe():
        probe_idx, build_idx = [], []
        for i, key in enumerate(probe.columns["k"].tolist()):
            hit = lookup.get(key)
            if hit is not None:
                probe_idx.append(i)
                build_idx.append(hit)
        return (
            {name: arr[probe_idx] for name, arr in probe.columns.items()}
            | {"w": build.columns["w"][build_idx]}
        )

    python_seconds, python_joined = measure_best(python_probe, reps=2)
    assert joined.nrows == len(python_joined["v"])
    return vector_seconds, python_seconds


def measure_q3(build_side: str):
    db = Database(
        sum_mode="repro", workers=1, morsel_size=MORSEL_SIZE,
        join_build=build_side,
    )
    load_tpch(db, scale_factor=SCALE)
    run_q3(db)  # warm-up (key dictionaries, pools)
    best, result = measure_best(lambda: run_q3(db))
    return best, _result_bits(result)


def test_join_report():
    vector_seconds, python_seconds = probe_kernel_series()
    probe_speedup = python_seconds / vector_seconds
    record_kernel(
        "join_probe", ns_per_element(vector_seconds, PROBE_ROWS)
    )
    record_speedup("join_probe_vectorized", probe_speedup)

    left_seconds, left_bits = measure_q3("left")
    right_seconds, right_bits = measure_q3("right")
    record_kernel("q3_repro_build_left", ns_per_element(left_seconds, ROWS))
    record_kernel("q3_repro_build_right", ns_per_element(right_seconds, ROWS))

    emit(
        "join_pipeline",
        table(
            ["series", "seconds", "ns/row"],
            [
                ["probe kernel (vectorized)", round(vector_seconds, 4),
                 round(ns_per_element(vector_seconds, PROBE_ROWS), 1)],
                ["probe kernel (python dict)", round(python_seconds, 4),
                 round(ns_per_element(python_seconds, PROBE_ROWS), 1)],
                ["Q3 repro, build=left", round(left_seconds, 4),
                 round(ns_per_element(left_seconds, ROWS), 1)],
                ["Q3 repro, build=right", round(right_seconds, 4),
                 round(ns_per_element(right_seconds, ROWS), 1)],
            ],
            title=(
                f"hash join: {BUILD_ROWS} build x {PROBE_ROWS} probe rows; "
                f"TPC-H Q3 at SF={SCALE}, workers=1"
            ),
        ),
        "Q3 runs customer |x| orders |x| lineitem through the planner\n"
        "(predicate pushdown into the scans, projection at the scans,\n"
        "build sides forced per run).  Repro-mode result bits must be\n"
        "identical for both build sides — plan choice is a pure\n"
        "performance decision under exact-merge aggregation.",
    )

    assert left_bits == right_bits, (
        "repro Q3 bits differ between join build sides"
    )
    assert probe_speedup >= PROBE_SPEEDUP_FLOOR, (
        f"vectorized probe speedup {probe_speedup:.2f}x below the "
        f"{PROBE_SPEEDUP_FLOOR}x floor"
    )
