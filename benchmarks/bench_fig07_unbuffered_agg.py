"""Figure 7: PARTITIONANDAGGREGATE on repro types *without* summation
buffers, against DECIMAL(p) baselines.

Paper: the drop-in reproducible types cost 4x-10x built-in floats at
small group counts, decaying to 1.5x-3x as partitioning costs dominate;
DECIMAL(38) catches up with the repro types from ~2**16 groups.

Model: the full 2**0..2**30 sweep.  Measured: the vectorised Python
kernels across a 2**2..2**14 sweep at n = 2**17 (relative ordering of
conventional vs repro accumulation holds; absolute ratios are
Python's, not Haswell's).
"""

import numpy as np
import pytest

from _common import emit, standard_pairs, table
from repro.aggregation import (
    ConventionalFloatSpec,
    ReproSpec,
    partition_and_aggregate,
)
from repro.simulator import fig7_series

N_MEASURED = 2**17
GROUP_EXPS_MEASURED = [2, 6, 10, 14]


@pytest.mark.parametrize("group_exp", GROUP_EXPS_MEASURED)
@pytest.mark.parametrize("label", ["double", "repro<double,2>"])
def test_fig07_measured_sweep(benchmark, label, group_exp):
    keys, values = standard_pairs(N_MEASURED, 2**group_exp)
    spec = (
        ConventionalFloatSpec(np.float64)
        if label == "double"
        else ReproSpec("double", 2)
    )
    benchmark.group = f"fig07-unbuffered-2^{group_exp}groups"
    benchmark.pedantic(
        lambda: partition_and_aggregate(keys, values, spec, fanout=16),
        rounds=3,
        iterations=1,
    )


def test_fig07_report(benchmark, model):
    out = benchmark.pedantic(
        lambda: fig7_series(model, group_exps=list(range(0, 31, 2))),
        rounds=1,
        iterations=1,
    )
    labels = ["float", "DECIMAL(9)", "DECIMAL(18)", "DECIMAL(38)",
              "repro<float,2>", "repro<double,2>", "repro<double,3>"]
    header = ["ngroups"] + labels
    body = []
    for i, ngroups in enumerate(out["ngroups"]):
        body.append(
            [f"2^{int(np.log2(ngroups))}"]
            + [round(out["series"][label][i], 1) for label in labels]
        )
    slowdown_rows = []
    for i, ngroups in enumerate(out["ngroups"]):
        slowdown_rows.append(
            [f"2^{int(np.log2(ngroups))}"]
            + [
                round(out["slowdown"][label][i], 2)
                for label in ("repro<float,2>", "repro<double,2>", "repro<double,3>")
            ]
        )
    emit(
        "fig07_unbuffered_agg",
        table(header, body, title="Model CPU time [ns] per element (n=2**30)"),
        table(
            ["ngroups", "repro<float,2>", "repro<double,2>", "repro<double,3>"],
            slowdown_rows,
            title="Slowdown vs float (paper: 4-10x small, 1.5-3x large)",
        ),
    )
    # Shape assertions from the paper's text.
    for label in ("repro<float,2>", "repro<double,2>", "repro<double,3>"):
        s = out["slowdown"][label]
        assert 3.0 <= s[0] <= 11.0
        assert s[-1] < s[0]
