"""Incremental materialized-view refresh vs. full recomputation.

The PR-5 acceptance gate: refreshing the TPC-H Q1 materialized view
after a **1% delta** of new lineitem rows must be at least **2.5x**
faster than recomputing the aggregate from scratch — while remaining
byte-identical to the from-scratch result (asserted here and in the
``view_maintenance`` leg of the reproducibility CI).  (The bound was
5x when full recomputation ran the interpreted pipeline; the fused
kernels since roughly halved the denominator, so the floor was
re-based — the refresh itself did not get slower.)

Reported series (``sum_mode="repro"``, ``workers=1``):

* **full recompute** — the Q1 GROUP BY over the whole lineitem table
  (what every query pays without a view);
* **incremental refresh** — ``REFRESH MATERIALIZED VIEW`` after
  inserting a 1% delta: only the delta rows are merged into the
  retractable partial states.

Everything lands in ``BENCH_pr.json`` for the CI bench-regression
gate: ns/element per leg plus the ``view_refresh_incremental_over_full``
ratio whose committed floor of 2.5 is the acceptance bound.
"""

import time

import numpy as np

from _common import (
    emit,
    ns_per_element,
    record_kernel,
    record_speedup,
    table,
)
from repro.engine import Database
from repro.tpch import Q1_SQL, load_lineitem

SCALE = 0.02        # ~120k lineitem rows
MORSEL_SIZE = 8192
ROWS = int(SCALE * 6_000_000)
REPS = 5
DELTA_FRACTION = 0.01

#: The acceptance bound enforced through baseline.json's
#: ``view_refresh_incremental_over_full`` floor.
MIN_SPEEDUP = 2.5

Q1_VIEW_SQL = """
CREATE MATERIALIZED VIEW q1_view AS SELECT
    l_returnflag,
    l_linestatus,
    SUM(l_quantity) AS sum_qty,
    SUM(l_extendedprice) AS sum_base_price,
    SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
    SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
    AVG(l_quantity) AS avg_qty,
    AVG(l_extendedprice) AS avg_price,
    AVG(l_discount) AS avg_disc,
    COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
"""


def _result_bits(result):
    pieces = []
    for arr in result.arrays:
        arr = np.asarray(arr)
        if arr.dtype == object:
            pieces.append("|".join(map(repr, arr.tolist())).encode())
        else:
            pieces.append(arr.tobytes())
    return tuple(pieces)


def test_view_refresh_report():
    db = Database(sum_mode="repro", workers=1, morsel_size=MORSEL_SIZE)
    load_lineitem(db, scale_factor=SCALE)
    lineitem = db.table("lineitem")
    names = lineitem.schema.names()
    delta_rows = [
        dict(zip(names, row))
        for row in lineitem.rows()[: max(1, int(len(lineitem) * DELTA_FRACTION))]
    ]

    # Full recompute: the plain Q1 GROUP BY (no view exists yet).
    db.execute(Q1_SQL)  # warm-up
    full_s = float("inf")
    for _ in range(REPS):
        started = time.perf_counter()
        db.execute(Q1_SQL)
        full_s = min(full_s, time.perf_counter() - started)

    db.execute(Q1_VIEW_SQL)
    view = db.view("q1_view")
    assert view.maintenance == "incremental"

    # Incremental refresh of a 1% delta, best of REPS.
    incremental_s = float("inf")
    for _ in range(REPS):
        lineitem.insert_rows(delta_rows)
        assert not view.is_fresh()
        started = time.perf_counter()
        consumed = db.execute("REFRESH MATERIALIZED VIEW q1_view")
        incremental_s = min(incremental_s, time.perf_counter() - started)
        assert consumed == len(delta_rows)
        assert view.is_fresh()

    # Reproducibility: the served view bits equal the from-scratch
    # recomputation over the mutated table.
    assert "ViewScan(q1_view" in db.explain(Q1_SQL)
    served_bits = _result_bits(db.execute(Q1_SQL))
    db.execute("DROP MATERIALIZED VIEW q1_view")
    scratch_bits = _result_bits(db.execute(Q1_SQL))
    assert served_bits == scratch_bits

    ratio = full_s / incremental_s
    delta_count = len(delta_rows)
    record_kernel("view_full_recompute", ns_per_element(full_s, ROWS))
    record_kernel("view_refresh_1pct_delta", ns_per_element(incremental_s, ROWS))
    record_speedup("view_refresh_incremental_over_full", ratio)

    rows = [
        (
            "full recompute", ROWS,
            f"{full_s * 1e3:.1f}", f"{ns_per_element(full_s, ROWS):.0f}",
            "1.00x",
        ),
        (
            "incremental refresh", delta_count,
            f"{incremental_s * 1e3:.1f}",
            f"{ns_per_element(incremental_s, ROWS):.0f}",
            f"{ratio:.1f}x",
        ),
    ]
    emit(
        "bench_view_refresh",
        table(
            ["leg", "rows touched", "ms", "ns/el (vs table)", "speedup"],
            rows,
            title=(
                f"TPC-H Q1 materialized view, repro mode "
                f"({ROWS} rows, {DELTA_FRACTION:.0%} delta)"
            ),
        ),
        (
            f"incremental refresh {ratio:.1f}x faster than full "
            f"recompute (gate: >= {MIN_SPEEDUP}x via the "
            f"view_refresh_incremental_over_full floor in baseline.json); "
            f"served view bits identical to the from-scratch Q1."
        ),
    )

    assert ratio >= MIN_SPEEDUP, (
        f"incremental refresh only {ratio:.2f}x faster than full "
        f"recompute (gate: >= {MIN_SPEEDUP}x)"
    )
