"""Table II: maximum absolute error of conventional vs RSUM summation.

Fully measured — accuracy is hardware-independent, so this bench
reproduces the paper's numbers exactly: the bound expressions
(Equations 5 and 6) evaluated at the paper's parameters, alongside the
actually measured errors of this implementation against exact oracles.
"""

import pytest

from _common import emit, table
from repro.analysis import format_sci, table2_rows


def test_table2_report(benchmark):
    rows = benchmark.pedantic(
        lambda: table2_rows(sizes=(10**3, 10**6), trials=2, seed=42),
        rounds=1,
        iterations=1,
    )
    body = []
    for r in rows:
        body.append(
            [
                r["algorithm"],
                r["n"],
                r["distribution"],
                format_sci(r["bound"]),
                format_sci(r["paper_bound"]),
                format_sci(r["measured"]),
                format_sci(r["state_error"]),
            ]
        )
    emit(
        "tab02_accuracy",
        table(
            ["algorithm", "n", "dist", "our bound", "paper bound",
             "measured |err|", "state |err|"],
            body,
            title="Maximum absolute error, double precision (paper Table II)",
        ),
        "Bounds match the paper's table; measured errors are far below\n"
        "the bounds (the paper: 'up to 2**(W-1) times more pessimistic').\n"
        "'state |err|' excludes the final rounding to one double.",
    )
    # Our bound expressions must reproduce the paper's table (1 digit).
    for r in rows:
        assert r["bound"] == pytest.approx(r["paper_bound"], rel=0.05), r
        # Measured error never exceeds the bound.
        if r["measured"] is not None and r["algorithm"] != "Conventional":
            assert r["measured"] <= r["bound"] + 1e-12 or r[
                "state_error"
            ] <= r["bound"]


def test_table2_conventional_vs_rsum_l2(benchmark):
    """Conclusion of §VI-B1: RSUM with L = 2 has comparable accuracy to
    conventional summation; L = 3 exceeds it."""
    import math

    import numpy as np

    from repro.core import reproducible_sum

    rng = np.random.default_rng(0)
    values = rng.exponential(size=10**6)

    result = benchmark.pedantic(
        lambda: reproducible_sum(values, levels=2), rounds=1, iterations=1
    )
    exact = math.fsum(values)
    conv_err = abs(float(np.sum(values)) - exact)
    rsum_err = abs(float(result) - exact)
    assert rsum_err <= conv_err * 2 + abs(exact) * 2**-52
