"""Figure 11 (Appendix A): almost-distinct data, various input sizes.

Paper: with bsz = 256, the per-element cost jumps whenever the average
records-per-group n/ngroups falls below 2**6, independent of n — the
summation routine amortises poorly on near-empty buffers and the
result write-back starts to dominate.

Model: the n = 2**25..2**30 family.  Measured: flush amortisation vs
records-per-group at Python scale (cost per element of buffered
accumulation rises as groups approach distinct).
"""

import numpy as np
import pytest

from _common import emit, standard_pairs, table
from repro.aggregation import BufferedReproSpec, hash_aggregate
from repro.simulator import fig11_series

N_MEASURED = 2**14


@pytest.mark.parametrize("rpg_exp", [8, 4, 1])
def test_fig11_measured_records_per_group(benchmark, rpg_exp):
    ngroups = N_MEASURED // 2**rpg_exp
    keys, values = standard_pairs(N_MEASURED, ngroups)
    spec = BufferedReproSpec("float", 2, 256)
    benchmark.group = "fig11-records-per-group"
    benchmark.pedantic(
        lambda: hash_aggregate(keys, values, spec),
        rounds=3,
        iterations=1,
    )


def test_fig11_report(benchmark, model):
    out = benchmark.pedantic(
        lambda: fig11_series(model, input_exps=[25, 27, 30]),
        rounds=1,
        iterations=1,
    )
    sections = []
    for n_exp, series in out["inputs"].items():
        exps = out["group_exps"][n_exp]
        body = [
            [f"2^{e}", f"2^{n_exp - e}", round(v, 1)]
            for e, v in zip(exps, series)
        ]
        sections.append(
            table(
                ["ngroups", "records/group", "model ns/elem"],
                body,
                title=f"n = 2^{n_exp}, bsz = 256",
            )
        )
        # The drop sets in below 2**6 records per group.
        by_rpg = {n_exp - e: v for e, v in zip(exps, series)}
        if 8 in by_rpg and 2 in by_rpg:
            assert by_rpg[2] > 1.3 * by_rpg[8]
    emit("fig11_distinct_data", *sections)
