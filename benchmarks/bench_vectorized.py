"""Vectorized vs. scalar aggregation: TPC-H Q1 and micro-kernels.

The headline of this benchmark is the PR-2 acceptance gate: the
vectorized columnar kernels (:mod:`repro.engine.vectorized`) must beat
the scalar morsel path by **>= 3x on TPC-H Q1** at bench scale with a
single worker, while returning **bit-identical repro-mode results** —
batching is pure mechanical sympathy, never a semantics change.

Reported series:

* **Q1 end-to-end** — wall-clock per mode for scalar vs. vectorized
  execution at ``workers=1`` (no parallelism hiding the kernel cost);
* **micro-kernels** — ``GroupedSummation.add_pairs`` (scattered
  ``ufunc.at`` quanta) vs. ``add_sorted_runs`` (segment ``reduceat``)
  on the paper's standard workload.

Everything lands in ``BENCH_pr.json`` (ns/element per kernel plus the
speedup ratios) for the CI bench-regression gate.
"""

import time

import numpy as np

from _common import (
    emit,
    ns_per_element,
    record_kernel,
    record_speedup,
    standard_pairs,
    table,
)
from repro.aggregation.grouped import GroupedSummation
from repro.core.params import RsumParams
from repro.engine import Database
from repro.fp.formats import BINARY64
from repro.tpch import load_lineitem, run_q1

SCALE = 0.01        # ~60k lineitem rows
MORSEL_SIZE = 4096
ROWS = int(SCALE * 6_000_000)
MODES = ("ieee", "repro")
REPS = 5

#: The acceptance floor: vectorized repro-mode Q1 must be this many
#: times faster than the scalar path.
SPEEDUP_FLOOR = 3.0


def _result_bits(result):
    return tuple(np.asarray(arr).tobytes() for arr in result.arrays)


def measure_q1(mode: str, vectorized: bool):
    db = Database(sum_mode=mode, workers=1, morsel_size=MORSEL_SIZE,
                  vectorized=vectorized)
    load_lineitem(db, scale_factor=SCALE)
    result = run_q1(db)  # warm-up (also warms the key dictionaries)
    assert db.last_pipeline_stats.vectorized is vectorized
    best = float("inf")
    for _ in range(REPS):
        started = time.perf_counter()
        result = run_q1(db)
        best = min(best, time.perf_counter() - started)
    return best, _result_bits(result)


def measure_kernel(fn, *args, reps: int = 5) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - started)
    return best


def test_vectorized_vs_scalar_report():
    q1 = {}
    for mode in MODES:
        scalar_seconds, scalar_bits = measure_q1(mode, vectorized=False)
        vector_seconds, vector_bits = measure_q1(mode, vectorized=True)
        q1[mode] = {
            "scalar": scalar_seconds,
            "vectorized": vector_seconds,
            "speedup": scalar_seconds / vector_seconds,
            "bits_equal": scalar_bits == vector_bits,
        }
        record_kernel(f"q1_{mode}_scalar", ns_per_element(scalar_seconds, ROWS))
        record_kernel(
            f"q1_{mode}_vectorized", ns_per_element(vector_seconds, ROWS)
        )
        record_speedup(f"q1_{mode}_vectorized", q1[mode]["speedup"])

    # Micro-kernel: scattered vs. segmented reproducible accumulation.
    n, ngroups = 1 << 18, 64
    gids, values = standard_pairs(n, ngroups)
    order = np.argsort(gids, kind="stable")
    sorted_gids, sorted_values = gids[order], values[order]
    params = RsumParams(BINARY64, 2)
    scattered_seconds = measure_kernel(
        lambda: GroupedSummation(params, ngroups).add_pairs(gids, values)
    )
    segmented_seconds = measure_kernel(
        lambda: GroupedSummation(params, ngroups).add_sorted_runs(
            sorted_gids, sorted_values
        )
    )
    record_kernel("rsum_add_pairs", ns_per_element(scattered_seconds, n))
    record_kernel("rsum_add_sorted_runs", ns_per_element(segmented_seconds, n))

    body = [
        [
            mode,
            round(stats["scalar"] * 1e3, 2),
            round(stats["vectorized"] * 1e3, 2),
            round(stats["speedup"], 2),
            stats["bits_equal"],
        ]
        for mode, stats in q1.items()
    ]
    body.append([
        "rsum kernel",
        round(scattered_seconds * 1e3, 2),
        round(segmented_seconds * 1e3, 2),
        round(scattered_seconds / segmented_seconds, 2),
        True,
    ])
    emit(
        "vectorized_vs_scalar",
        table(
            ["series", "scalar ms", "vectorized ms", "speedup", "bits equal"],
            body,
            title=(
                f"TPC-H Q1 (SF={SCALE}, morsel={MORSEL_SIZE}, workers=1) "
                "and RSUM micro-kernels"
            ),
        ),
        "The vectorized path dictionary-encodes keys, shares one sort\n"
        "per morsel across aggregates, and accumulates RSUM quanta with\n"
        "segment reductions.  Repro-mode bits are identical by\n"
        "construction; IEEE bits are identical because the vectorized\n"
        "path keeps physical-row-order accumulation for IEEE sums.",
    )

    for mode in MODES:
        assert q1[mode]["bits_equal"], (
            f"{mode}: vectorized result bits differ from the scalar path"
        )
    assert q1["repro"]["speedup"] >= SPEEDUP_FLOOR, (
        f"vectorized repro Q1 speedup {q1['repro']['speedup']:.2f}x "
        f"below the {SPEEDUP_FLOOR}x acceptance floor"
    )
