"""Fused kernels vs. the interpreted vectorized path: TPC-H Q1.

The headline is the PR-6 acceptance gate: **reproducible fused Q1 must
run within 1.5x of IEEE vectorized Q1** — the paper's thesis is that
reproducibility is affordable, and the fused kernels
(:mod:`repro.engine.fused`) are what close the gap.  The floor is
enforced as a machine-relative ratio (``q1_repro_fused_over_ieee``,
floor ``1 / 1.5``) so it gates reliably across runners.

Reported series, all at ``workers=1`` so no parallelism hides kernel
cost:

* **Q1 end-to-end** per sum mode for the interpreted vectorized path
  vs. the fused kernel path, with result bits asserted identical;
* the repro-vs-IEEE gap, before (vectorized) and after (fused).

Timings for the two paths are interleaved round-robin in one process,
which cancels the machine's slow drift out of the ratios.
"""

import gc
import time

import numpy as np

from _common import emit, ns_per_element, record_kernel, record_speedup, table
from repro.engine import Database
from repro.tpch import load_lineitem, load_tpch, run_q1, run_q3

SCALE = 0.01        # ~60k lineitem rows
MORSEL_SIZE = 8192
ROWS = int(SCALE * 6_000_000)
ROUNDS = 7

#: The acceptance gate: repro fused Q1 within 1.5x of IEEE vectorized,
#: expressed as a speedup ratio floor (ieee_vec / repro_fused).
RATIO_CEILING = 1.5
SPEEDUP_FLOOR = 1.0 / RATIO_CEILING


def _result_bits(result):
    return tuple(np.asarray(arr).tobytes() for arr in result.arrays)


def _prepare(mode: str, fused: bool):
    db = Database(sum_mode=mode, workers=1, morsel_size=MORSEL_SIZE,
                  fused=fused)
    load_lineitem(db, scale_factor=SCALE)
    result = run_q1(db)  # warm-up: key dictionaries + kernel compile
    run_q1(db)           # second run replays the cached plan (kernel attached)
    stats = db.last_pipeline_stats
    assert stats.fused is fused
    assert db.execution_context.plan_cache_hits >= 1
    if fused:
        assert stats.kernel_time() > 0.0
    return db, _result_bits(result)


def test_fused_vs_vectorized_report():
    configs = [
        ("ieee", False), ("ieee", True), ("repro", False), ("repro", True),
    ]
    dbs, bits = {}, {}
    for key in configs:
        dbs[key], bits[key] = _prepare(*key)
    for mode in ("ieee", "repro"):
        assert bits[(mode, False)] == bits[(mode, True)], (
            f"{mode}: fused result bits differ from the vectorized path"
        )

    best = {key: float("inf") for key in configs}
    for _ in range(ROUNDS):
        for key in configs:
            gc.collect()
            started = time.perf_counter()
            run_q1(dbs[key])
            best[key] = min(best[key], time.perf_counter() - started)

    for (mode, fused), seconds in best.items():
        suffix = "fused" if fused else "vectorized_m8k"
        record_kernel(f"q1_{mode}_{suffix}", ns_per_element(seconds, ROWS))

    gap_ratio = best[("repro", True)] / best[("ieee", False)]
    record_speedup("q1_repro_fused_over_ieee", 1.0 / gap_ratio)
    record_speedup(
        "q1_repro_fused_over_vectorized",
        best[("repro", False)] / best[("repro", True)],
    )

    body = [
        [
            mode,
            round(best[(mode, False)] * 1e3, 2),
            round(best[(mode, True)] * 1e3, 2),
            round(best[(mode, False)] / best[(mode, True)], 2),
            bits[(mode, False)] == bits[(mode, True)],
        ]
        for mode in ("ieee", "repro")
    ]
    emit(
        "fused_vs_vectorized",
        table(
            ["mode", "vectorized ms", "fused ms", "speedup", "bits equal"],
            body,
            title=(
                f"TPC-H Q1 (SF={SCALE}, morsel={MORSEL_SIZE}, workers=1): "
                "interpreted vectorized vs. fused kernels"
            ),
        ),
        f"repro fused / ieee vectorized = {gap_ratio:.2f}x "
        f"(acceptance ceiling {RATIO_CEILING}x).\n"
        "Fused kernels compile scan->filter->project->aggregate into one\n"
        "generated per-morsel function: dispatch is resolved at compile\n"
        "time, all repro sums share one ladder sweep, and the steady\n"
        "state scatter-accumulates exact quanta with no sort at all —\n"
        "bits stay identical to the scalar path in every mode.",
    )

    assert gap_ratio <= RATIO_CEILING, (
        f"repro fused Q1 runs {gap_ratio:.2f}x the IEEE vectorized time, "
        f"above the {RATIO_CEILING}x acceptance ceiling"
    )


#: PR-10 acceptance gate: the fused probe->filter->aggregate kernel must
#: beat the interpreted vectorized join path on Q3 by at least 1.3x.
Q3_FUSED_SPEEDUP_FLOOR = 1.3


def _prepare_q3(fused: bool):
    db = Database(sum_mode="repro", workers=1, morsel_size=MORSEL_SIZE,
                  fused=fused)
    load_tpch(db, scale_factor=SCALE)
    result = run_q3(db)  # warm-up: join build + kernel compile
    run_q3(db)           # second run hits the plan/kernel caches
    stats = db.last_pipeline_stats
    assert stats.fused is fused
    return db, _result_bits(result)


def test_fused_join_vs_interpreted_report():
    """TPC-H Q3, repro mode: fused join kernel vs. interpreted probe."""
    dbs, bits = {}, {}
    for fused in (False, True):
        dbs[fused], bits[fused] = _prepare_q3(fused)
    assert bits[False] == bits[True], (
        "Q3: fused join result bits differ from the interpreted path"
    )

    best = {fused: float("inf") for fused in (False, True)}
    for _ in range(ROUNDS):
        for fused in (False, True):
            gc.collect()
            started = time.perf_counter()
            run_q3(dbs[fused])
            best[fused] = min(best[fused], time.perf_counter() - started)

    # Normalised by probe-side (lineitem) rows, like the Q1 series.
    record_kernel("q3_repro_interpreted", ns_per_element(best[False], ROWS))
    record_kernel("q3_repro_fused", ns_per_element(best[True], ROWS))

    speedup = best[False] / best[True]
    record_speedup("q3_fused_over_interpreted", speedup)

    emit(
        "fused_join_vs_interpreted",
        table(
            ["path", "q3 ms", "bits equal"],
            [
                ["interpreted", round(best[False] * 1e3, 2), True],
                ["fused", round(best[True] * 1e3, 2),
                 bits[False] == bits[True]],
            ],
            title=(
                f"TPC-H Q3 repro (SF={SCALE}, morsel={MORSEL_SIZE}, "
                "workers=1): interpreted vectorized join vs. fused "
                "probe kernel"
            ),
        ),
        f"fused join speedup = {speedup:.2f}x "
        f"(acceptance floor {Q3_FUSED_SPEEDUP_FLOOR}x).\n"
        "The fused kernel compiles the whole Q3 pipeline —\n"
        "filter -> probe(orders) -> probe(customer) -> aggregate — into\n"
        "one generated per-morsel pass: selection vectors stay lazy\n"
        "(flatnonzero + composed takes, never boolean re-scans), probe\n"
        "keys gather through dense value LUTs, and group ids come\n"
        "straight from build-side rows.  Result bits are asserted\n"
        "identical to the interpreted path before any timing runs.",
    )

    assert speedup >= Q3_FUSED_SPEEDUP_FLOOR, (
        f"fused Q3 is only {speedup:.2f}x the interpreted join path, "
        f"below the {Q3_FUSED_SPEEDUP_FLOOR}x acceptance floor"
    )
