"""Sharded multi-process Q1 vs. the single-process thread pipeline.

The PR-8 acceptance gate: **reproducible Q1 at 8 shard processes must
beat the best single-process thread configuration** on wall-clock.
Python threads only overlap where numpy drops the GIL; shard executor
processes escape it entirely, and the paper's exact-merge property is
what makes that migration free — the partial group tables exchanged
over the spill wire format merge to byte-identical results.

The floor is enforced as a machine-relative ratio
(``q1_sharded8_over_threads``: best-threads wall / sharded-8 wall,
floor 1.5 on the multi-core CI runners) so it gates reliably across
machines.  Result bits are asserted identical between both paths in
the same run — the speedup is only admissible because the answer is
the same answer.

Warm-up runs pay kernel compilation *and* shard replica shipping; the
measured runs exercise the steady state the replica cache is for:
local compute + partial-state exchange only.
"""

import gc
import os
import time

import numpy as np

from _common import emit, ns_per_element, record_kernel, record_speedup, table
from repro.engine import Database
from repro.tpch import load_lineitem, run_q1

SCALE = float(os.environ.get("REPRO_BENCH_SHARDED_SCALE", "0.1"))
MORSEL_SIZE = 8192
ROWS = int(SCALE * 6_000_000)
ROUNDS = 3
SHARDS = 8
THREAD_WORKERS = (1, 4, 8)

#: The acceptance floor lives in ``baseline.json``
#: (``q1_sharded8_over_threads``); CI fails below it.


def _result_bits(result):
    return tuple(np.asarray(arr).tobytes() for arr in result.arrays)


def _prepare(**knobs):
    db = Database(sum_mode="repro", morsel_size=MORSEL_SIZE, **knobs)
    load_lineitem(db, scale_factor=SCALE)
    result = run_q1(db)  # warm-up: kernels compile, shard replicas ship
    run_q1(db)
    return db, _result_bits(result)


def _best_wall(db) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        gc.collect()
        started = time.perf_counter()
        run_q1(db)
        best = min(best, time.perf_counter() - started)
    return best


def test_sharded_vs_threads_report():
    thread_dbs = {}
    bits = None
    for workers in THREAD_WORKERS:
        db, db_bits = _prepare(workers=workers)
        thread_dbs[workers] = db
        assert bits is None or db_bits == bits
        bits = db_bits
    sharded_db, sharded_bits = _prepare(shards=SHARDS, shard_workers=SHARDS)
    assert sharded_bits == bits, (
        "sharded Q1 bits differ from the thread pipeline"
    )
    stats = sharded_db.last_pipeline_stats
    assert stats.sharded and stats.shards == SHARDS

    thread_walls = {w: _best_wall(db) for w, db in thread_dbs.items()}
    sharded_wall = _best_wall(sharded_db)
    exchange_bytes = sharded_db.last_pipeline_stats.exchange_bytes

    best_workers, best_threads = min(
        thread_walls.items(), key=lambda item: item[1]
    )
    speedup = best_threads / sharded_wall
    record_kernel("q1_repro_sharded8", ns_per_element(sharded_wall, ROWS))
    record_speedup("q1_sharded8_over_threads", speedup)

    body = [
        [f"threads workers={w}", round(wall * 1e3, 2),
         round(ns_per_element(wall, ROWS), 1), ""]
        for w, wall in sorted(thread_walls.items())
    ]
    body.append([
        f"sharded shards={SHARDS}", round(sharded_wall * 1e3, 2),
        round(ns_per_element(sharded_wall, ROWS), 1),
        f"{speedup:.2f}x vs best threads (workers={best_workers})",
    ])
    emit(
        "sharded_q1",
        table(
            ["config", "wall ms", "ns/row", "headline"],
            body,
            f"TPC-H Q1 (SF={SCALE}, morsel={MORSEL_SIZE}, repro): "
            f"thread pipeline vs {SHARDS} shard processes "
            f"(steady-state exchange {exchange_bytes >> 10} KiB/query)",
        ),
    )

    for db in thread_dbs.values():
        db.close()
    sharded_db.close()
