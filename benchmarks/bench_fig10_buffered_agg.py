"""Figure 10: PARTITIONANDAGGREGATE *with* summation buffers.

The paper's headline figure, three panels:

* absolute ns/element of buffered repro types vs unbuffered DECIMALs;
* slowdown vs built-in float — mostly 1.3x-2.5x ("about a factor two");
* speedup of buffered vs unbuffered repro — 2x-6x for small group
  counts, dipping slightly below 1 for almost-distinct keys.

Measured part: the per-tuple (unbuffered drop-in) kernel against the
buffered/vectorised kernel at n = 2**13 — the speedup from batching is
Python-exaggerated but lands on the same side everywhere the paper's
does.
"""

import numpy as np
import pytest

from _common import emit, standard_pairs, table
from repro.aggregation import BufferedReproSpec, ReproSpec, hash_aggregate
from repro.simulator import PAPER_ANCHORS, fig10_series

N_MEASURED = 2**13


@pytest.mark.parametrize("mode", ["per-tuple", "buffered"])
def test_fig10_measured_buffered_vs_unbuffered(benchmark, mode):
    keys, values = standard_pairs(N_MEASURED, 2**6)
    spec = (
        ReproSpec("double", 2)
        if mode == "per-tuple"
        else BufferedReproSpec("double", 2, 256)
    )
    elementwise = mode == "per-tuple"
    benchmark.group = "fig10-buffered-vs-pertuple-64groups"
    benchmark.pedantic(
        lambda: hash_aggregate(keys, values, spec, elementwise=elementwise),
        rounds=3,
        iterations=1,
    )


def test_fig10_report(benchmark, model):
    out = benchmark.pedantic(
        lambda: fig10_series(model, group_exps=list(range(0, 31, 2))),
        rounds=1,
        iterations=1,
    )
    exps = [int(np.log2(g)) for g in out["ngroups"]]
    repro_labels = [
        "repro<float,2>", "repro<float,3>", "repro<double,2>", "repro<double,3>",
    ]
    ns_body = []
    for i, e in enumerate(exps):
        ns_body.append(
            [f"2^{e}"]
            + [round(out["ns"][lbl][i], 1)
               for lbl in ["float", "DECIMAL(18)", "DECIMAL(38)"] + repro_labels]
        )
    slow_body = [
        [f"2^{e}"] + [round(out["slowdown"][lbl][i], 2) for lbl in repro_labels]
        for i, e in enumerate(exps)
    ]
    speed_body = [
        [f"2^{e}"] + [round(out["speedup"][lbl][i], 2) for lbl in repro_labels]
        for i, e in enumerate(exps)
    ]
    emit(
        "fig10_buffered_agg",
        table(
            ["ngroups", "float", "DEC(18)", "DEC(38)"] + repro_labels,
            ns_body,
            title="Model ns/element with summation buffers (n=2**30)",
        ),
        table(
            ["ngroups"] + repro_labels, slow_body,
            title="Slowdown vs float (paper: mostly 1.3-2.5x)",
        ),
        table(
            ["ngroups"] + repro_labels, speed_body,
            title="Speedup vs unbuffered (paper: 2x to >5x, <1 at distinct)",
        ),
    )
    for lbl in repro_labels:
        speedups = out["speedup"][lbl]
        assert speedups[0] > 2.0
        assert speedups[-1] < 1.2
        # Headline: slowdown about a factor of two in the mid range.
        mid = out["slowdown"][lbl][4:12]
        assert all(1.0 < s < 4.5 for s in mid), (lbl, mid)


def test_fig10_l4_speedup_up_to_6x(model):
    """Paper: 'up to factor 6 for the omitted L = 4'."""
    from repro.simulator import dtype_model

    buffered = dtype_model("repro<double,4>").buffered()
    unbuffered = dtype_model("repro<double,4>")
    speedup = model.partition_and_aggregate_ns(
        unbuffered, 16
    ) / model.partition_and_aggregate_ns(buffered, 16)
    assert speedup > 4.5
