"""Ablation: the W and L parameters of the reproducible format.

Paper §III-C: W "affects the result (the higher, the more accurate)
and the cost (the higher, the slower)"; the defaults are W = 40
(double) and W = 18 (single).  This bench sweeps both knobs:

* accuracy — measured error vs the exact sum and the Equation-6 bound
  across W in {10..50} and L in {1..4};
* cost — measured time of the vectorised kernel (per-level work means
  L is the cost driver; W only moves the NB bound, which the
  integer-carry design makes a non-issue — worth showing).
"""

import math

import numpy as np
import pytest

from _common import emit, table
from repro.analysis import abs_error, rsum_error_bound
from repro.analysis.reporting import format_sci
from repro.core import ReproducibleSummer, RsumParams, max_block_size
from repro.fp.formats import BINARY64


@pytest.fixture(scope="module")
def values():
    rng = np.random.default_rng(0)
    exponents = rng.uniform(-20, 20, size=20_000)
    return rng.choice([-1.0, 1.0], 20_000) * np.exp2(exponents)


def test_ablation_w_sweep_report(benchmark, values):
    def sweep():
        rows = []
        for w in (10, 20, 30, 40, 50):
            for levels in (1, 2, 3):
                params = RsumParams(BINARY64, levels, w)
                summer = ReproducibleSummer(params=params)
                summer.add_array(values)
                error = abs_error(summer.result(), values)
                bound = rsum_error_bound(
                    len(values), float(np.max(np.abs(values))), levels, w
                )
                rows.append([w, levels, max_block_size(BINARY64, w),
                             format_sci(error), format_sci(bound)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_params_w",
        table(
            ["W", "L", "NB bound", "measured |err|", "Eq.6 bound"],
            rows,
            title="W/L sweep on wide-exponent data (n = 20000)",
        ),
        "Higher W or L -> lower error, matching Equation 6's\n"
        "2**((1-L)W - 1) factor.  The paper's W=40, L=2 default makes\n"
        "the bound comparable to conventional summation.",
    )
    # Error decreases (weakly) in W at fixed L>=2, and in L at fixed W.
    errors = {}
    for w, levels, _, err, _ in rows:
        errors[(w, levels)] = err

    def val(cell):
        return 0.0 if cell == "0" else float(cell.replace("e", "E"))

    for levels in (2, 3):
        series = [val(errors[(w, levels)]) for w in (10, 20, 30, 40, 50)]
        assert series[-1] <= series[0] * 1.001
    for w in (20, 40):
        series = [val(errors[(w, lv)]) for lv in (1, 2, 3)]
        assert series[2] <= series[0] * 1.001


@pytest.mark.parametrize("levels", [1, 2, 3, 4])
def test_ablation_cost_vs_levels(benchmark, values, levels):
    """Vectorised kernel cost scales with L (the paper's Figure 4)."""
    params = RsumParams(BINARY64, levels)

    def run():
        summer = ReproducibleSummer(params=params)
        summer.add_array(values)
        return summer.result()

    benchmark.group = "ablation-cost-vs-L"
    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("w", [20, 40, 50])
def test_ablation_cost_vs_w(benchmark, values, w):
    """W does not change the vectorised cost materially (the per-level
    extraction work is W-independent; only accuracy moves)."""
    params = RsumParams(BINARY64, 2, w)

    def run():
        summer = ReproducibleSummer(params=params)
        summer.add_array(values)
        return summer.result()

    benchmark.group = "ablation-cost-vs-W"
    benchmark.pedantic(run, rounds=3, iterations=1)
