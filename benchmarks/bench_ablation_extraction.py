"""Ablation: anchored extraction vs the paper's running-sum extraction.

DESIGN.md motivates extracting contributions against the constant
level anchor ``1.5 * 2**e`` instead of the running sum ``S(l)``: the
two coincide except on round-to-nearest *ties* (inputs landing exactly
half a level-ulp between grid points), where the running-sum variant's
(q, r) split depends on the accumulated low bits — i.e. on input
order.  This bench quantifies that: on tie-dense inputs, it counts how
often the running-sum variant's internal state diverges across
permutations, and verifies the anchored variant never does.
"""

import numpy as np
import pytest

from _common import emit, standard_pairs, table
from repro.core import ReproducibleSummer, RsumParams, ScalarRsumPaper, SummationState
from repro.fp.ieee import float_to_bits


def tie_dense_values(rng, n, e0_exp=40, m=52):
    """Values that are exact odd multiples of half the level-0 ulp."""
    half_ulp = 2.0 ** (e0_exp - m - 1)
    ks = rng.integers(1, 2**20, size=n) * 2 + 1  # odd -> always a tie
    signs = rng.choice([-1.0, 1.0], size=n)
    values = signs * ks * half_ulp
    # Include one large value pinning the ladder at e0_exp.
    values[0] = 1.5 * 2.0 ** (e0_exp - 14)
    return values


def run_experiment(permutations=50, n=64, seed=0):
    rng = np.random.default_rng(seed)
    values = tie_dense_values(rng, n)
    params = RsumParams.double(2)

    anchored_states = set()
    running_results = set()
    running_states = set()
    for _ in range(permutations):
        order = rng.permutation(n)
        anchored = SummationState(params)
        anchored.add_array(values[order])
        anchored_states.add(anchored.state_tuple())
        paper = ScalarRsumPaper(params)
        paper.add_many(values[order])
        running_results.add(float_to_bits(float(paper.result())))
        running_states.add(tuple(float(s) for s in paper.S))
    return {
        "anchored_distinct_states": len(anchored_states),
        "running_distinct_states": len(running_states),
        "running_distinct_results": len(running_results),
    }


def test_ablation_extraction_report(benchmark):
    stats = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        "ablation_extraction",
        table(
            ["variant", "distinct internal states", "distinct result bits"],
            [
                ["anchored (ours)", stats["anchored_distinct_states"], 1],
                ["running-sum (paper Alg. 2)",
                 stats["running_distinct_states"],
                 stats["running_distinct_results"]],
            ],
            title="50 permutations of 64 tie-dense values",
        ),
        "Anchored extraction is state-identical under permutation by\n"
        "construction.  The running-sum variant's level split wanders\n"
        "with order on tie inputs; its final result usually re-converges\n"
        "(the moved half-ulp lives exactly on the next level's grid),\n"
        "which is why the paper could use it — but the guarantee is\n"
        "easier to prove, and no slower, with constant anchors.",
    )
    assert stats["anchored_distinct_states"] == 1


def test_ablation_extraction_agreement_off_ties(benchmark):
    """Off tie inputs, both variants are bit-identical."""
    rng = np.random.default_rng(1)
    values = rng.exponential(size=2000)
    params = RsumParams.double(2)

    def compare():
        paper = ScalarRsumPaper(params)
        paper.add_many(values)
        ours = SummationState(params)
        ours.add_array(values)
        return float(paper.result()), float(ours.finalize())

    a, b = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert a == b


def test_ablation_extraction_speed(benchmark):
    """Vectorised anchored extraction vs the per-element spec loop."""
    values = np.random.default_rng(2).exponential(size=2**13)

    def run_anchored():
        summer = ReproducibleSummer("double", 2)
        summer.add_array(values)
        return summer.result()

    benchmark.group = "ablation-extraction-speed"
    benchmark.pedantic(run_anchored, rounds=3, iterations=1)


def test_ablation_extraction_speed_paper_loop(benchmark):
    values = np.random.default_rng(2).exponential(size=2**13)
    params = RsumParams.double(2)

    def run_paper():
        paper = ScalarRsumPaper(params)
        paper.add_many(values)
        return paper.result()

    benchmark.group = "ablation-extraction-speed"
    benchmark.pedantic(run_paper, rounds=3, iterations=1)
