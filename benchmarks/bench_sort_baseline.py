"""Section VI-A's SORTAGGREGATION baseline.

Paper: over 60 ns/element even on built-in floats — 20x our algorithm
in the best case, 3x+ wherever n/ngroups < 2**6 — which is why a
numeric solution beats sorting for reproducibility.

Measured: wall-clock sort-aggregate vs partition-and-aggregate on the
reproducible spec at n = 2**16; sorting also loses in Python.
"""

import numpy as np
import pytest

from _common import emit, standard_pairs, table
from repro.aggregation import (
    ConventionalFloatSpec,
    ReproSpec,
    partition_and_aggregate,
    sort_aggregate,
)
from repro.simulator import sort_baseline_series

N_MEASURED = 2**16


@pytest.mark.parametrize("algorithm", ["sort-agg-float", "partition-agg-repro2"])
def test_sort_baseline_measured(benchmark, algorithm):
    keys, values = standard_pairs(N_MEASURED, 2**10)
    benchmark.group = "sort-baseline-1024-groups"
    if algorithm == "sort-agg-float":
        benchmark.pedantic(
            lambda: sort_aggregate(keys, values, ConventionalFloatSpec()),
            rounds=3, iterations=1,
        )
    else:
        benchmark.pedantic(
            lambda: partition_and_aggregate(
                keys, values, ReproSpec("double", 2), fanout=16
            ),
            rounds=3, iterations=1,
        )


def test_sort_baseline_report(benchmark, model):
    out = benchmark.pedantic(lambda: sort_baseline_series(model), rounds=1,
                             iterations=1)
    body = [
        [f"2^{e}", round(v, 2), round(out["sort_ns"] / v, 1)]
        for e, v in zip(out["group_exps"], out["ours_ns"])
    ]
    emit(
        "sort_baseline",
        table(
            ["ngroups", "ours ns/elem", "sort is Nx slower"],
            body,
            title=f"SORTAGGREGATION model: {out['sort_ns']:.1f} ns/elem "
                  f"(paper: >{out['paper_sort_ns']:.0f} ns)",
        ),
    )
    assert out["sort_ns"] > 60.0
    assert out["sort_ns"] / min(out["ours_ns"]) >= 15  # paper: 20x best case
