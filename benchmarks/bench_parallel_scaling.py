"""Parallel scaling: TPC-H Q1 throughput vs. worker count.

The morsel-driven pipeline distributes scan chunks round-robin over
workers and merges the per-worker partial aggregates exactly, so the
repro modes return identical bits at every worker count — this
benchmark measures what that costs and what parallelism buys.

Two throughput series per sum mode:

* **wall** — end-to-end wall-clock on this host.  CPython's GIL (and
  single-core CI boxes) serialise the workers, so wall-clock alone
  cannot show scaling here;
* **critical path** — per-worker busy time is measured with
  ``time.thread_time`` (CPU time of that thread only), so
  ``max(worker busy) + merge + finalize`` is the modelled wall-clock on
  ``workers`` dedicated cores.  This is the same measured-kernel +
  modelled-hardware split the rest of the benchmark suite uses for
  AVX/cache effects Python cannot exhibit.

The headline assertion: at 4 workers the critical-path speedup over
workers=1 exceeds 1.5x for at least one sum mode.
"""

import os
import time

from _common import emit, record_kernel, table
from repro.engine import Database
from repro.tpch import load_lineitem, run_q1

SCALE = 0.01        # ~60k lineitem rows
MORSEL_SIZE = 4096  # ~15 morsels: enough to balance 8 workers
#: Sweepable so the nightly deep matrix can extend the fused sweep to
#: the paper's 16-worker point without slowing every PR run.
WORKER_COUNTS = tuple(
    int(part)
    for part in os.environ.get(
        "REPRO_BENCH_WORKER_COUNTS", "1,2,4,8"
    ).split(",")
    if part.strip()
)
MODES = ("ieee", "repro")
ROWS = int(SCALE * 6_000_000)


def measure(mode: str, workers: int) -> dict:
    db = Database(sum_mode=mode, workers=workers, morsel_size=MORSEL_SIZE)
    load_lineitem(db, scale_factor=SCALE)
    run_q1(db)  # warm-up
    best = None
    for _ in range(3):
        started = time.perf_counter()
        run_q1(db)
        wall = time.perf_counter() - started
        critical = db.last_pipeline_stats.critical_path()
        if best is None or critical < best["critical"]:
            best = {"wall": wall, "critical": critical}
    return best


def test_parallel_scaling_report():
    results = {
        mode: {workers: measure(mode, workers) for workers in WORKER_COUNTS}
        for mode in MODES
    }

    for mode in MODES:
        for workers in (1, 4):
            if workers not in results[mode]:
                continue
            record_kernel(
                f"q1_{mode}_workers{workers}",
                results[mode][workers]["critical"] / ROWS * 1e9,
            )

    body = []
    for mode in MODES:
        serial = results[mode][1]
        for workers in WORKER_COUNTS:
            r = results[mode][workers]
            body.append([
                mode,
                workers,
                round(r["wall"] * 1e3, 2),
                round(r["critical"] * 1e3, 2),
                round(ROWS / r["critical"] / 1e6, 1),
                round(serial["critical"] / r["critical"], 2),
            ])

    emit(
        "parallel_scaling",
        table(
            ["mode", "workers", "wall ms", "critical-path ms",
             "Mrows/s (cp)", "speedup (cp)"],
            body,
            title=f"TPC-H Q1 (SF={SCALE}, morsel={MORSEL_SIZE}) vs workers",
        ),
        "critical path = max per-worker CPU time + merge + finalize:\n"
        "the modelled wall-clock on dedicated cores (the GIL serialises\n"
        "threads, so host wall-clock cannot show scaling).  Repro-mode\n"
        "results are bit-identical at every worker count; IEEE results\n"
        "may drift with the split.",
    )

    # Headline: >1.5x critical-path speedup at 4 workers for at least
    # one sum mode.
    if all(w in results[MODES[0]] for w in (1, 4)):
        speedups = {
            mode: results[mode][1]["critical"] / results[mode][4]["critical"]
            for mode in MODES
        }
        assert max(speedups.values()) > 1.5, speedups
