"""Serving throughput: queries/second at 1 / 8 / 32 concurrent sessions.

Each leg drives a real :class:`repro.server.ReproServer` (TCP on a
loopback port, the production wire path: framed JSON + base64 column
bytes) with N blocking-socket clients, each running the same GROUP BY
SUM over a shared table in ``sum_mode="repro"``.  Reported qps is
completed-queries over wall-clock across all clients.

Two gates land in ``BENCH_pr.json``:

* per-query server-side cost at each concurrency (ns/element against
  the scanned rows), compared against ``baseline.json``'s
  ``ns_per_element`` entries with the usual tolerance;
* ``serving_qps_8_over_1`` — throughput at 8 sessions over throughput
  at 1.  Its committed floor asserts the admission gate and MVCC
  snapshots don't make concurrency *collapse*: 8 sessions must retain
  at least the floor's fraction of serial throughput.  (Python's GIL
  caps the upside; the gate is about not regressing into lock
  convoys.)

Every client's result bits are also cross-checked against a local
session — serving must never trade correctness for throughput.
"""

import asyncio
import threading
import time

import numpy as np

from _common import emit, ns_per_element, record_kernel, record_speedup, table
import repro
from repro.engine import Database
from repro.server import ReproServer

ROWS = 40_000
NGROUPS = 64
QUERIES_PER_CLIENT = {1: 40, 8: 10, 32: 3}
CONCURRENCY = (1, 8, 32)
QUERY = "SELECT k, SUM(v) AS sv, COUNT(*) AS c FROM obs GROUP BY k ORDER BY k"

#: Acceptance bound via baseline.json's ``serving_qps_8_over_1`` floor.
MIN_8_OVER_1 = 0.5


class _ServerThread:
    def __init__(self, db, **kwargs):
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self.address = None
        self.db = db
        self.kwargs = kwargs
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        async with ReproServer(self.db, **self.kwargs) as server:
            self.address = server.address
            self._ready.set()
            await self._stop.wait()

    def stop(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)


def _seed(db):
    rng = np.random.default_rng(7474)
    keys = rng.integers(0, NGROUPS, size=ROWS)
    values = rng.choice([-1.0, 1.0], size=ROWS) * np.exp2(
        rng.uniform(-30, 30, size=ROWS)
    )
    db.execute("CREATE TABLE obs (k INT, v DOUBLE)")
    db.table("obs").bulk_load({"k": keys.tolist(), "v": values.tolist()})


def _drive(address, n_clients: int, queries_each: int,
           expected_bits: bytes) -> float:
    """Run the workload; return wall seconds across all clients."""
    barrier = threading.Barrier(n_clients + 1)
    failures = []

    def client():
        try:
            with repro.connect(address, sum_mode="repro") as session:
                barrier.wait()
                for _ in range(queries_each):
                    result = session.execute(QUERY)
                    bits = b"".join(a.tobytes() for a in result.arrays)
                    assert bits == expected_bits, "served bits drifted"
        except Exception as exc:  # pragma: no cover - diagnostic
            failures.append(exc)
            try:
                barrier.abort()
            except Exception:
                pass

    threads = [threading.Thread(target=client) for _ in range(n_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert not failures, failures
    return elapsed


def test_serving_throughput_report():
    db = Database(sum_mode="repro")
    _seed(db)
    local = db.session()
    expected_bits = b"".join(
        a.tobytes() for a in local.execute(QUERY).arrays
    )

    server = _ServerThread(db, max_inflight=8, max_backlog=64)
    try:
        # Warm up the wire + kernel caches once.
        with repro.connect(server.address, sum_mode="repro") as session:
            session.execute(QUERY)

        qps = {}
        rows = []
        for n_clients in CONCURRENCY:
            queries_each = QUERIES_PER_CLIENT[n_clients]
            total = n_clients * queries_each
            elapsed = _drive(
                server.address, n_clients, queries_each, expected_bits
            )
            qps[n_clients] = total / elapsed
            per_query_s = elapsed / total
            record_kernel(
                f"serving_query_c{n_clients}",
                ns_per_element(per_query_s, ROWS),
            )
            rows.append(
                (
                    n_clients, total, f"{elapsed * 1e3:.0f}",
                    f"{qps[n_clients]:.1f}",
                    f"{per_query_s * 1e3:.1f}",
                )
            )
    finally:
        server.stop()

    ratio_8 = qps[8] / qps[1]
    ratio_32 = qps[32] / qps[1]
    record_speedup("serving_qps_8_over_1", ratio_8)

    emit(
        "bench_serving",
        table(
            ["sessions", "queries", "wall ms", "qps", "ms/query"],
            rows,
            title=(
                f"served GROUP BY SUM over {ROWS} rows x {NGROUPS} groups "
                f"(repro mode, TCP loopback, max_inflight=8)"
            ),
        ),
        (
            f"8 sessions retain {ratio_8:.2f}x of serial throughput "
            f"(gate: >= {MIN_8_OVER_1}x via the serving_qps_8_over_1 "
            f"floor), 32 sessions {ratio_32:.2f}x; every served result "
            f"byte-identical to the local session."
        ),
    )

    assert ratio_8 >= MIN_8_OVER_1, (
        f"throughput at 8 sessions collapsed to {ratio_8:.2f}x of serial "
        f"(gate: >= {MIN_8_OVER_1}x)"
    )
