#!/usr/bin/env python
"""Canonical-query reproducibility digest for the CI matrix.

Runs a fixed query set under the repro sum modes across every
``(workers, morsel_size, vectorized, fused, memory_budget)``
combination — and, for the join queries, every hash-join build side —
asserts the
result bits are identical *within* this process, and writes one digest
line per (query, mode) to ``--out`` (default ``repro_digest.txt``).

The digest deliberately excludes the execution knobs: a leg running
``--workers 1,2`` and a leg running ``--workers 4,8`` — or a different
OS / Python, or a different set of memory budgets — must produce
byte-identical files.  The CI compare job downloads every leg's digest
and fails if any two differ, which is the paper's reproducibility
claim turned into a cross-platform gate.  The join legs (TPC-H Q3 and
an adversarial NaN/-0.0-key join) extend that gate to the planner:
plan choice, probe order, and build side must be invisible in
repro-mode bits.  The memory-budget axis extends it to out-of-core
execution: an unbounded run, a tight budget that forces the external
aggregation to spill partitions to disk, and a pathological 1-byte
budget that spills after every morsel must all agree bit for bit.
The fused axis extends it to code generation: plans compiled into one
fused morsel kernel (:mod:`repro.engine.fused`) and the same plans run
through the interpreted operator pipeline must also agree bit for bit
— including the automatic fallback legs where fusion declines (scalar
path, external aggregation).  The join legs (``tpch_q3`` and
``join_edge_fused``) cross it with the build-side axis: there the
``fused=on`` configs run the fused join-probe kernel (probe → gather →
filter → aggregate in one morsel pass) and the script *asserts* the
kernel engaged, so the comparison is genuinely kernel-vs-interpreter
and not interpreter-vs-interpreter; ``join_edge_keys`` keeps a
COUNT DISTINCT so the automatic join-plan decline stays in the gate
too.

Env overrides (so matrix legs vary without changing the command line):

* ``REPRO_DIGEST_WORKERS`` — comma-separated worker counts;
* ``REPRO_DIGEST_BUILD_SIDES`` — hash-join build sides for join legs;
* ``REPRO_DIGEST_MEMORY_BUDGETS`` — comma-separated byte budgets;
  ``unbounded`` (or ``0``) disables spilling for that run;
* ``REPRO_DIGEST_FUSED`` — comma-separated ``on`` / ``off`` flags for
  the fused-kernel sweep (default ``on,off``);
* ``REPRO_DIGEST_SHARDS`` — comma-separated shard counts (``0`` = the
  in-process pipeline, ``N`` = hash-sharded multi-process execution
  with partial-state exchange; default ``0,2``);
* ``REPRO_DIGEST_TPCH_SCALE`` — TPC-H scale factor (the nightly deep
  matrix runs x10 the PR default).

The shards axis extends the gate across *process* boundaries: a leg
that hash-shards every eligible aggregate over executor processes and
exchanges partial group tables over the spill wire format must digest
byte-identically to the single-process legs.
"""

import argparse
import hashlib
import os
import sys

import numpy as np

from repro.engine import Database
from repro.tpch import Q1_SQL, Q3_SQL, Q6_SQL, load_tpch

MODES = ("repro", "repro_buffered", "sorted")
MORSEL_SIZES = (1 << 16, 4096, 257)
DEFAULT_TPCH_SCALE = 0.002  # ~12k lineitem rows: fast, still multi-morsel

MIXED_QUERY = (
    "SELECT k, s, SUM(v) AS sv, RSUM(v, 3) AS rv, AVG(v) AS av, "
    "COUNT(*) AS c, MIN(v) AS lo, MAX(v) AS hi, STDDEV(v) AS sd "
    "FROM obs GROUP BY k, s ORDER BY k, s"
)
EDGE_QUERY = "SELECT k, SUM(v) AS sv, COUNT(*) AS c FROM edge GROUP BY k ORDER BY k"
JOIN_EDGE_QUERY = (
    "SELECT jl.k AS k, SUM(v) AS sv, SUM(w) AS sw, "
    "COUNT(DISTINCT v) AS dv, COUNT(*) AS c "
    "FROM jl, jr WHERE jl.k = jr.k GROUP BY jl.k ORDER BY k"
)
#: Same adversarial-key join without COUNT DISTINCT (which declines
#: fusion), so the fused axis exercises the fused join-probe kernel
#: rather than the interpreted fallback on both settings.
JOIN_EDGE_FUSED_QUERY = (
    "SELECT jl.k AS k, SUM(v) AS sv, SUM(w) AS sw, COUNT(*) AS c, "
    "MIN(v) AS lo, MAX(v) AS hi "
    "FROM jl, jr WHERE jl.k = jr.k GROUP BY jl.k ORDER BY k"
)
VIEW_QUERY = (
    "SELECT k, SUM(v) AS sv, COUNT(*) AS c, AVG(v) AS av, "
    "RSUM(v, 3) AS rv, COUNT(DISTINCT v) AS dv "
    "FROM vm GROUP BY k ORDER BY k"
)


def _view_maintenance(db):
    """The view-maintenance leg: replay a seeded interleaving of
    INSERT / DELETE / REFRESH against a materialized view, assert the
    final served result is byte-identical to the from-scratch base
    scan over the same table, and return it for the digest.

    The interleaving is deterministic, so every matrix leg — any
    workers / morsel_size / vectorized / memory_budget / OS / Python —
    must digest identically.
    """
    rng = np.random.default_rng(20180418)
    db.execute("CREATE TABLE vm (k INT, v DOUBLE)")
    db.execute(
        "CREATE MATERIALIZED VIEW vm_agg AS "
        "SELECT k, SUM(v) AS sv, COUNT(*) AS c, AVG(v) AS av, "
        "RSUM(v, 3) AS rv, COUNT(DISTINCT v) AS dv FROM vm GROUP BY k"
    )
    table = db.table("vm")
    for _ in range(14):
        action = rng.random()
        if action < 0.6 or len(table) < 20:
            count = int(rng.integers(5, 60))
            keys = rng.integers(0, 9, size=count)
            values = rng.choice([-1.0, 1.0], size=count) * np.exp2(
                rng.uniform(-45, 45, size=count)
            )
            values[rng.random(count) < 0.04] = np.nan
            values[rng.random(count) < 0.04] = np.inf
            values[rng.random(count) < 0.04] = -0.0
            table.insert_rows(
                [{"k": int(k), "v": float(v)} for k, v in zip(keys, values)]
            )
        else:
            key = int(rng.integers(0, 9))
            db.execute(f"DELETE FROM vm WHERE k = {key}")
        if rng.random() < 0.35:
            db.execute("REFRESH MATERIALIZED VIEW vm_agg")
    db.execute("REFRESH MATERIALIZED VIEW vm_agg")
    if "ViewScan(vm_agg" not in db.explain(VIEW_QUERY):
        raise SystemExit("view_maintenance: fresh view was not matched")
    served = db.execute(VIEW_QUERY)
    db.execute("DROP MATERIALIZED VIEW vm_agg")
    scratch = db.execute(VIEW_QUERY)
    if canonical_bytes(served) != canonical_bytes(scratch):
        raise SystemExit(
            "NON-REPRODUCIBLE: view_maintenance served result differs "
            "from the from-scratch recomputation"
        )
    return served


SERVING_QUERY_TEMPLATE = (
    "SELECT k, SUM(v) AS sv, COUNT(*) AS c, MIN(v) AS lo, MAX(v) AS hi "
    "FROM {table} GROUP BY k ORDER BY k"
)

SERVING_THREADS = 8
SERVING_STEPS = 20


def _serving_scripts():
    """Seeded per-thread DML/query scripts over disjoint keyspaces.

    Disjoint keyspaces make the final row *multiset* independent of the
    thread interleaving; repro-mode aggregation then makes the final
    query *bits* independent of it too (physical row order differs run
    to run — the paper's order-invariance is what closes the gap).
    """
    scripts = []
    for thread_id in range(SERVING_THREADS):
        rng = np.random.default_rng(20180419 + thread_id)
        ops = []
        base = thread_id * 100
        for _ in range(SERVING_STEPS):
            roll = rng.random()
            key = base + int(rng.integers(0, 5))
            value = float(
                rng.choice([-1.0, 1.0]) * np.exp2(rng.uniform(-40, 40))
            )
            if roll < 0.55:
                ops.append(
                    f"INSERT INTO {{table}} VALUES ({key}, {value!r})"
                )
            elif roll < 0.68:
                ops.append(f"DELETE FROM {{table}} WHERE k = {key}")
            elif roll < 0.78:
                ops.append(
                    f"UPDATE {{table}} SET v = v * -0.5 WHERE k = {key}"
                )
            elif roll < 0.88:
                ops.append("REFRESH MATERIALIZED VIEW {view}")
            else:
                ops.append(
                    "SELECT k, SUM(v) FROM {table} GROUP BY k ORDER BY k"
                )
        scripts.append(ops)
    return scripts


def _concurrent_serving(db):
    """The concurrent-serving leg: 8 sessions replay seeded
    INSERT/DELETE/UPDATE/REFRESH/SELECT scripts *concurrently* against
    one table, a serial round-robin replays the same scripts against a
    second table in the same database, and the two final results must
    be byte-identical — snapshot-isolated MVCC reads plus statement
    atomicity turned into the same cross-leg gate as everything else.
    """
    import threading

    scripts = _serving_scripts()
    setup = db.session()
    for suffix in ("", "_serial"):
        setup.execute(f"CREATE TABLE cs{suffix} (k INT, v DOUBLE)")
        setup.execute(
            f"CREATE MATERIALIZED VIEW cs_totals{suffix} AS "
            f"SELECT k, SUM(v) AS sv FROM cs{suffix} GROUP BY k"
        )

    failures = []
    barrier = threading.Barrier(SERVING_THREADS)

    def run(ops):
        session = db.session()
        try:
            barrier.wait()
            for sql in ops:
                session.execute(sql.format(table="cs", view="cs_totals"))
        except Exception as exc:  # pragma: no cover - diagnostic
            failures.append(exc)
        finally:
            session.close()

    threads = [
        threading.Thread(target=run, args=(ops,)) for ops in scripts
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise SystemExit(f"concurrent_serving: session failed: {failures[0]}")

    serial = db.session()
    for step in range(SERVING_STEPS):
        for ops in scripts:
            serial.execute(
                ops[step].format(table="cs_serial", view="cs_totals_serial")
            )

    concurrent_result = setup.execute(
        SERVING_QUERY_TEMPLATE.format(table="cs")
    )
    serial_result = setup.execute(
        SERVING_QUERY_TEMPLATE.format(table="cs_serial")
    )
    if canonical_bytes(concurrent_result) != canonical_bytes(serial_result):
        raise SystemExit(
            "NON-REPRODUCIBLE: concurrent_serving bits differ from the "
            "serial replay of the same scripts"
        )
    return concurrent_result


DURABILITY_QUERY = (
    "SELECT k, SUM(v) AS sv, COUNT(*) AS c, RSUM(v, 3) AS rv "
    "FROM du GROUP BY k ORDER BY k"
)


def _durability_script():
    """A deterministic DML/REFRESH workload touching every WAL record
    type, with ladder-straddling doubles so physical row order shows
    in the bits if recovery ever reorders it."""
    rng = np.random.default_rng(20180911)
    statements = [
        "CREATE TABLE du (k INT, v DOUBLE)",
        "CREATE MATERIALIZED VIEW du_agg AS "
        "SELECT k, SUM(v) AS sv FROM du GROUP BY k",
    ]
    for step in range(10):
        roll = rng.random()
        if roll < 0.6 or step < 2:
            count = int(rng.integers(4, 24))
            keys = rng.integers(0, 7, size=count)
            values = rng.choice([-1.0, 1.0], size=count) * np.exp2(
                rng.uniform(-40, 40, size=count)
            )
            values[rng.random(count) < 0.05] = -0.0
            rows = ", ".join(
                f"({int(k)}, {float(v)!r})" for k, v in zip(keys, values)
            )
            statements.append(f"INSERT INTO du VALUES {rows}")
        elif roll < 0.75:
            key = int(rng.integers(0, 7))
            statements.append(f"DELETE FROM du WHERE k = {key}")
        elif roll < 0.9:
            key = int(rng.integers(0, 7))
            statements.append(
                f"UPDATE du SET v = v * 2.0 WHERE k = {key}"
            )
        else:
            statements.append("REFRESH MATERIALIZED VIEW du_agg")
    statements.append("REFRESH MATERIALIZED VIEW du_agg")
    return statements


def _durability(db):
    """The durability leg: replay a seeded DML/REFRESH workload twice —
    once against the in-memory sweep database and once against a
    durable directory with a mid-workload checkpoint and a simulated
    ``kill -9`` — then recover the directory and require byte-identical
    bits.  Crash recovery joins the same cross-platform, cross-config
    digest gate as every execution knob.
    """
    import shutil
    import tempfile

    statements = _durability_script()
    for statement in statements:
        db.execute(statement)
    expected = db.execute(DURABILITY_QUERY)

    tmp = tempfile.mkdtemp(prefix="repro-digest-durability-")
    try:
        config = dict(db.session_defaults)
        durable = Database(path=tmp, checkpoint_interval=None, **config)
        try:
            midpoint = len(statements) // 2
            for statement in statements[:midpoint]:
                durable.execute(statement)
            durable.checkpoint()
            for statement in statements[midpoint:]:
                durable.execute(statement)
        finally:
            durable.simulate_crash()
        recovered = Database(path=tmp, checkpoint_interval=None, **config)
        try:
            result = recovered.execute(DURABILITY_QUERY)
            if canonical_bytes(result) != canonical_bytes(expected):
                raise SystemExit(
                    "NON-REPRODUCIBLE: durability leg recovered to bits "
                    "that differ from the never-crashed database"
                )
        finally:
            recovered.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return result


def tpch_scale() -> float:
    default = str(DEFAULT_TPCH_SCALE)
    return float(os.environ.get("REPRO_DIGEST_TPCH_SCALE", default))


def _mixed_data():
    rng = np.random.default_rng(20180416)  # ICDE'18, deterministic
    n = 4000
    keys = rng.integers(0, 23, size=n)
    labels = np.array(["x", "y", "z"], dtype=object)[rng.integers(0, 3, n)]
    values = (
        rng.choice([-1.0, 1.0], size=n)
        * rng.uniform(1.0, 2.0, size=n)
        * np.exp2(rng.uniform(-40, 40, size=n))
    )
    values[::401] = 0.0
    values[1::409] = -0.0
    return keys, labels, values


def _edge_data():
    keys = np.array(
        [np.nan, 2.0, np.nan, -0.0, 0.0, np.inf, -np.inf, 2.0, np.nan, np.inf]
    )
    values = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0])
    return keys, values


def _load(db, which):
    if which is None:
        return
    if which == "tpch":
        load_tpch(db, scale_factor=tpch_scale())
        return
    if which == "mixed":
        keys, labels, values = _mixed_data()
        db.execute("CREATE TABLE obs (k INT, s VARCHAR(1), v DOUBLE)")
        db.table("obs").bulk_load(
            {
                "k": keys.tolist(),
                "s": labels.tolist(),
                "v": values.tolist(),
            }
        )
        return
    if which == "join_edge":
        rng = np.random.default_rng(20180417)
        n = 3000
        left_keys = rng.integers(0, 40, size=n).astype(np.float64)
        left_keys[::97] = np.nan
        left_keys[1::89] = -0.0
        left_keys[2::83] = np.inf
        right_keys = np.concatenate(
            (np.arange(40, dtype=np.float64), [np.nan, 0.0, np.inf])
        )
        left_values = rng.choice([-1.0, 1.0], size=n) * np.exp2(
            rng.uniform(-30, 30, size=n)
        )
        db.execute("CREATE TABLE jl (k DOUBLE, v DOUBLE)")
        db.execute("CREATE TABLE jr (k DOUBLE, w DOUBLE)")
        db.table("jl").bulk_load({"k": left_keys.tolist(), "v": left_values.tolist()})
        db.table("jr").bulk_load(
            {
                "k": right_keys.tolist(),
                "w": rng.uniform(0.0, 1.0, size=len(right_keys)).tolist(),
            }
        )
        return
    keys, values = _edge_data()
    db.execute("CREATE TABLE edge (k DOUBLE, v DOUBLE)")
    db.table("edge").bulk_load({"k": keys.tolist(), "v": values.tolist()})


#: (query_id, data source, SQL or callable(db) -> result, sweeps join
#: build sides?).  Callables own their data loading and DML replay
#: (``source`` is ``None``) — the view_maintenance leg interleaves
#: INSERT/DELETE/REFRESH and digests the served view contents.
QUERIES = (
    ("tpch_q1", "tpch", Q1_SQL, False),
    ("tpch_q6", "tpch", Q6_SQL, False),
    ("tpch_q3", "tpch", Q3_SQL, True),
    ("mixed_aggs", "mixed", MIXED_QUERY, False),
    ("edge_keys", "edge", EDGE_QUERY, False),
    ("join_edge_keys", "join_edge", JOIN_EDGE_QUERY, True),
    ("join_edge_fused", "join_edge", JOIN_EDGE_FUSED_QUERY, True),
    ("view_maintenance", None, _view_maintenance, False),
    ("concurrent_serving", None, _concurrent_serving, False),
    ("durability", None, _durability, False),
)

#: Join legs whose ``fused=on`` configs must actually engage the fused
#: join-probe kernel — otherwise the fused axis silently degenerates to
#: interpreted-vs-interpreted and the gate proves nothing.
FUSED_JOIN_QUERY_IDS = frozenset({"tpch_q3", "join_edge_fused"})


def parse_workers(text: str) -> list[int]:
    workers = [int(part) for part in text.split(",") if part.strip()]
    if not workers or any(w < 1 for w in workers):
        raise SystemExit(f"bad worker counts {text!r}")
    return workers


def parse_build_sides(text: str) -> tuple[str, ...]:
    sides = tuple(part.strip() for part in text.split(",") if part.strip())
    if not sides or any(s not in ("auto", "left", "right") for s in sides):
        raise SystemExit(f"bad build sides {text!r}")
    return sides


def parse_fused(text: str) -> tuple[bool, ...]:
    flags = []
    for part in text.split(","):
        part = part.strip().lower()
        if not part:
            continue
        if part not in ("on", "off", "true", "false", "1", "0"):
            raise SystemExit(f"bad fused flag {part!r}")
        flags.append(part in ("on", "true", "1"))
    if not flags:
        raise SystemExit(f"no fused flags in {text!r}")
    return tuple(flags)


def parse_shards(text: str) -> tuple[int, ...]:
    try:
        shards = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"bad shard counts {text!r}") from None
    if not shards or any(s < 0 for s in shards):
        raise SystemExit(f"bad shard counts {text!r}")
    return shards


def parse_budgets(text: str) -> tuple:
    """Parse the memory-budget sweep: ``unbounded`` / ``none`` / ``0``
    mean no budget; anything else is a byte count."""
    budgets = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if part.lower() in ("unbounded", "none", "0"):
            budgets.append(None)
            continue
        try:
            value = int(part)
        except ValueError:
            raise SystemExit(f"bad memory budget {part!r}") from None
        if value < 0:
            raise SystemExit(f"bad memory budget {part!r}")
        budgets.append(value)
    if not budgets:
        raise SystemExit(f"no memory budgets in {text!r}")
    return tuple(budgets)


def canonical_bytes(result):
    """Platform-independent byte form of a query result."""
    pieces = [("|".join(result.names)).encode("utf-8")]
    for arr in result.arrays:
        arr = np.asarray(arr)
        if arr.dtype.kind == "O":
            rendered = "\x1f".join(repr(value) for value in arr.tolist())
            pieces.append(rendered.encode("utf-8"))
        else:
            # Force little-endian so the IEEE bit patterns hash the
            # same on every architecture.
            pieces.append(arr.astype(arr.dtype.newbyteorder("<")).tobytes())
    return b"\x1e".join(pieces)


def _sweep_configs(workers, build_sides, budgets, fused_flags, shards_counts,
                   sweeps_builds):
    sides = build_sides if sweeps_builds else ("auto",)
    for worker_count in workers:
        for morsel_size in MORSEL_SIZES:
            for vectorized in (True, False):
                # Fusion only engages on the vectorized path, so
                # sweeping it there covers kernel-vs-interpreter; the
                # vectorized=False legs keep the scalar fallback in
                # the same gate.
                flags = fused_flags if vectorized else (False,)
                for fused in flags:
                    for build_side in sides:
                        for budget in budgets:
                            for shard_count in shards_counts:
                                yield (
                                    worker_count, morsel_size, vectorized,
                                    fused, build_side, budget, shard_count,
                                )


def digest_lines(workers, build_sides, budgets=(None,), queries=QUERIES,
                 fused_flags=(True, False), shards_counts=(0,)):
    lines = []
    for query_id, source, sql, sweeps_builds in queries:
        for mode in MODES:
            reference = None
            reference_config = None
            for config in _sweep_configs(
                workers, build_sides, budgets, fused_flags, shards_counts,
                sweeps_builds,
            ):
                (worker_count, morsel_size, vectorized, fused,
                 build_side, budget, shard_count) = config
                db = Database(
                    sum_mode=mode,
                    workers=worker_count,
                    morsel_size=morsel_size,
                    vectorized=vectorized,
                    fused=fused,
                    join_build=build_side,
                    memory_budget=budget,
                    shards=shard_count,
                )
                try:
                    _load(db, source)
                    if callable(sql):
                        result = sql(db)
                    else:
                        result = db.execute(sql)
                    payload = canonical_bytes(result)
                    if (query_id in FUSED_JOIN_QUERY_IDS and fused
                            and vectorized and budget is None):
                        stats = db.last_pipeline_stats
                        if stats is None or not stats.fused:
                            raise SystemExit(
                                f"{query_id}: fused=on leg at {config} "
                                "did not engage the fused join-probe "
                                "kernel"
                            )
                finally:
                    # Tear down shard executor processes and worker
                    # pools before the next config spins its own.
                    db.close()
                if reference is None:
                    reference = payload
                    reference_config = config
                elif payload != reference:
                    raise SystemExit(
                        f"NON-REPRODUCIBLE: {query_id} "
                        f"[{mode}] at {config} differs "
                        f"from {reference_config}"
                    )
            digest = hashlib.sha256(reference).hexdigest()
            lines.append(f"{query_id} {mode} {digest}")
    return lines


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        default=os.environ.get("REPRO_DIGEST_WORKERS", "1,2,4"),
        help="comma-separated worker counts to sweep (default 1,2,4)",
    )
    parser.add_argument(
        "--build-sides",
        default=os.environ.get("REPRO_DIGEST_BUILD_SIDES", "auto,left,right"),
        help="comma-separated hash-join build sides for the join legs",
    )
    parser.add_argument(
        "--memory-budgets",
        default=os.environ.get("REPRO_DIGEST_MEMORY_BUDGETS", "unbounded"),
        help=(
            "comma-separated aggregation memory budgets in bytes to "
            "sweep ('unbounded' disables spilling; 1 is the "
            "pathological spill-every-morsel leg)"
        ),
    )
    parser.add_argument(
        "--fused",
        default=os.environ.get("REPRO_DIGEST_FUSED", "on,off"),
        help=(
            "comma-separated on/off flags for the fused-kernel sweep "
            "on the vectorized legs (default on,off)"
        ),
    )
    parser.add_argument(
        "--shards",
        default=os.environ.get("REPRO_DIGEST_SHARDS", "0,2"),
        help=(
            "comma-separated shard counts to sweep (0 = in-process "
            "pipeline, N = multi-process shard exchange; default 0,2)"
        ),
    )
    parser.add_argument("--out", default="repro_digest.txt")
    args = parser.parse_args(argv)
    workers = parse_workers(args.workers)
    build_sides = parse_build_sides(args.build_sides)
    budgets = parse_budgets(args.memory_budgets)
    fused_flags = parse_fused(args.fused)
    shards_counts = parse_shards(args.shards)

    lines = digest_lines(
        workers, build_sides, budgets, QUERIES, fused_flags,
        shards_counts=shards_counts,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    for line in lines:
        print(line)
    print(
        f"\nwrote {args.out} (workers swept: {workers}, "
        f"build sides swept: {list(build_sides)}, "
        f"memory budgets swept: {list(budgets)}, "
        f"fused swept: {list(fused_flags)}, "
        f"shards swept: {list(shards_counts)}, "
        f"tpch scale: {tpch_scale()})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
