#!/usr/bin/env python
"""Compare a BENCH_pr.json against the committed benchmark baseline.

Usage:
    python scripts/check_bench_regression.py CURRENT BASELINE \
        [--tolerance 0.25] [--update-baseline]

``ns_per_element`` kernels fail when the current value exceeds the
baseline by more than the tolerance (default 25%, overridable with
``--tolerance`` or the ``REPRO_BENCH_TOLERANCE`` env var).  The
``speedup_floors`` section of the baseline holds hard lower bounds on
the measured ``speedups`` ratios — ratios are machine-relative, so they
gate reliably even when absolute timings move with the runner.

When ``$GITHUB_STEP_SUMMARY`` is set (always, inside GitHub Actions)
the comparison table is also appended there as Markdown, so perf
deltas are visible on the run page without downloading artifacts.

``--update-baseline`` rewrites the baseline's ``ns_per_element``
section from the current run (floors are left untouched).
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def compare(current, baseline, tolerance):
    """Returns ``(kernel_rows, speedup_rows, failures)``.

    Kernel rows: ``(name, measured, reference, ratio, limit, status)``;
    speedup rows: ``(name, measured, floor, status)``.  Missing entries
    appear with ``None`` measurements and status ``FAIL``.
    """
    failures = []
    kernel_rows = []
    current_ns = current.get("ns_per_element", {})
    reference_ns = baseline.get("ns_per_element", {})
    for kernel, reference in sorted(reference_ns.items()):
        measured = current_ns.get(kernel)
        if measured is None:
            kernel_rows.append((kernel, None, reference, None, None, "FAIL"))
            failures.append(f"{kernel}: missing from current run")
            continue
        limit = reference * (1.0 + tolerance)
        ratio = measured / reference if reference else float("inf")
        status = "FAIL" if measured > limit else "ok"
        kernel_rows.append((kernel, measured, reference, ratio, limit, status))
        if measured > limit:
            failures.append(
                f"{kernel}: {measured:.1f} ns/el exceeds {limit:.1f} "
                f"(baseline {reference:.1f} +{tolerance:.0%})"
            )

    speedup_rows = []
    current_speedups = current.get("speedups", {})
    for name, floor in sorted(baseline.get("speedup_floors", {}).items()):
        measured = current_speedups.get(name)
        if measured is None:
            speedup_rows.append((name, None, floor, "FAIL"))
            failures.append(f"speedup {name}: missing from current run")
            continue
        status = "FAIL" if measured < floor else "ok"
        speedup_rows.append((name, measured, floor, status))
        if measured < floor:
            failures.append(
                f"speedup {name}: {measured:.2f}x below the {floor}x floor"
            )
    return kernel_rows, speedup_rows, failures


def render_markdown(kernel_rows, speedup_rows, tolerance, failures):
    """The step-summary Markdown report."""
    verdict = "❌ FAILED" if failures else "✅ passed"
    lines = [
        f"## Bench regression gate {verdict}",
        "",
        f"ns/element vs committed baseline (tolerance {tolerance:.0%}):",
        "",
        "| kernel | current ns/el | baseline | ratio | limit | status |",
        "| --- | ---: | ---: | ---: | ---: | :---: |",
    ]
    for name, measured, reference, ratio, limit, status in kernel_rows:
        if measured is None:
            cells = ["_missing_", f"{reference:.1f}", "—", "—"]
        else:
            cells = [
                f"{measured:.1f}",
                f"{reference:.1f}",
                f"{ratio:.2f}x",
                f"{limit:.1f}",
            ]
        joined = " | ".join([f"`{name}`"] + cells + [status])
        lines.append(f"| {joined} |")
    if speedup_rows:
        lines += [
            "",
            "Speedup floors (machine-relative ratios):",
            "",
            "| speedup | measured | floor | status |",
            "| --- | ---: | ---: | :---: |",
        ]
        for name, measured, floor, status in speedup_rows:
            rendered = "_missing_" if measured is None else f"{measured:.2f}x"
            lines.append(f"| `{name}` | {rendered} | {floor}x | {status} |")
    if failures:
        lines += ["", "Failures:", ""]
        lines += [f"- {failure}" for failure in failures]
    return "\n".join(lines) + "\n"


def write_step_summary(markdown, path=None):
    """Append the report to ``$GITHUB_STEP_SUMMARY`` when present."""
    target = path if path is not None else os.environ.get("GITHUB_STEP_SUMMARY")
    if not target:
        return False
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(markdown)
        handle.write("\n")
    return True


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="BENCH_pr.json from this run")
    parser.add_argument("baseline", help="committed benchmarks/baseline.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.25")),
        help="allowed fractional ns/element regression (default 0.25)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline ns/element numbers from the current run",
    )
    args = parser.parse_args(argv)

    current = load(args.current)
    baseline = load(args.baseline)

    if args.update_baseline:
        baseline["ns_per_element"] = current.get("ns_per_element", {})
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline ns/element updated from {args.current}")
        return 0

    kernel_rows, speedup_rows, failures = compare(current, baseline, args.tolerance)
    for name, measured, reference, ratio, limit, status in kernel_rows:
        if measured is None:
            print(f"[{status}] {name}: missing from current run")
        else:
            print(
                f"[{status}] {name}: {measured:.1f} ns/el "
                f"(baseline {reference:.1f}, {ratio:.2f}x, limit {limit:.1f})"
            )
    for name, measured, floor, status in speedup_rows:
        if measured is None:
            print(f"[{status}] speedup {name}: missing from current run")
        else:
            print(f"[{status}] speedup {name}: {measured:.2f}x (floor {floor}x)")

    write_step_summary(
        render_markdown(kernel_rows, speedup_rows, args.tolerance, failures)
    )

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
