#!/usr/bin/env python
"""Compare a BENCH_pr.json against the committed benchmark baseline.

Usage:
    python scripts/check_bench_regression.py CURRENT BASELINE \
        [--tolerance 0.25] [--update-baseline]

``ns_per_element`` kernels fail when the current value exceeds the
baseline by more than the tolerance (default 25%, overridable with
``--tolerance`` or the ``REPRO_BENCH_TOLERANCE`` env var).  The
``speedup_floors`` section of the baseline holds hard lower bounds on
the measured ``speedups`` ratios — ratios are machine-relative, so they
gate reliably even when absolute timings move with the runner.

``--update-baseline`` rewrites the baseline's ``ns_per_element``
section from the current run (floors are left untouched).
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="BENCH_pr.json from this run")
    parser.add_argument("baseline", help="committed benchmarks/baseline.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.25")),
        help="allowed fractional ns/element regression (default 0.25)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline ns/element numbers from the current run",
    )
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    if args.update_baseline:
        baseline["ns_per_element"] = current.get("ns_per_element", {})
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline ns/element updated from {args.current}")
        return 0

    failures = []
    current_ns = current.get("ns_per_element", {})
    reference_ns = baseline.get("ns_per_element", {})
    for kernel, reference in sorted(reference_ns.items()):
        measured = current_ns.get(kernel)
        if measured is None:
            failures.append(f"{kernel}: missing from current run")
            continue
        limit = reference * (1.0 + args.tolerance)
        ratio = measured / reference if reference else float("inf")
        status = "FAIL" if measured > limit else "ok"
        print(
            f"[{status}] {kernel}: {measured:.1f} ns/el "
            f"(baseline {reference:.1f}, {ratio:.2f}x, limit {limit:.1f})"
        )
        if measured > limit:
            failures.append(
                f"{kernel}: {measured:.1f} ns/el exceeds {limit:.1f} "
                f"(baseline {reference:.1f} +{args.tolerance:.0%})"
            )

    current_speedups = current.get("speedups", {})
    for name, floor in sorted(baseline.get("speedup_floors", {}).items()):
        measured = current_speedups.get(name)
        if measured is None:
            failures.append(f"speedup {name}: missing from current run")
            continue
        status = "FAIL" if measured < floor else "ok"
        print(f"[{status}] speedup {name}: {measured:.2f}x (floor {floor}x)")
        if measured < floor:
            failures.append(
                f"speedup {name}: {measured:.2f}x below the {floor}x floor"
            )

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
